"""Deterministic fault plans: ordinal-counted triggering, the fired
log, and the module-global install/clear lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.faults import (Fault, FaultPlan, active_fault_plan,
                          clear_fault_plan, fault_hook, install_fault_plan)


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


class TestFaultPlan:
    def test_fires_at_exact_ordinal_only(self):
        plan = FaultPlan([Fault("rpc_send", at=3, kind="kill_peer")])
        assert plan.hit("rpc_send") is None
        assert plan.hit("rpc_send") is None
        fault = plan.hit("rpc_send")
        assert fault is not None and fault.kind == "kill_peer"
        assert plan.hit("rpc_send") is None
        assert plan.hits("rpc_send") == 4
        assert plan.fired == [("rpc_send", 3, "kill_peer")]

    def test_sites_count_independently(self):
        plan = FaultPlan([Fault("rpc_send", at=1, kind="delay", arg=0.1),
                          Fault("rpc_recv", at=2, kind="drop_reply")])
        assert plan.hit("rpc_recv") is None
        assert plan.hit("rpc_send").kind == "delay"
        assert plan.hit("rpc_recv").kind == "drop_reply"
        assert plan.fired == [("rpc_send", 1, "delay"),
                              ("rpc_recv", 2, "drop_reply")]

    def test_unscheduled_site_still_counts(self):
        plan = FaultPlan([])
        assert plan.hit("wal_ship") is None
        assert plan.hits("wal_ship") == 1

    def test_duplicate_ordinal_per_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([Fault("rpc_send", at=1, kind="delay"),
                       Fault("rpc_send", at=1, kind="kill_peer")])

    def test_ordinals_are_one_based(self):
        with pytest.raises(ValueError, match="ordinal"):
            Fault("rpc_send", at=0, kind="delay")

    def test_hit_counting_is_thread_safe(self):
        plan = FaultPlan([Fault("rpc_send", at=500, kind="delay")])
        fired = []

        def worker():
            for _ in range(100):
                fault = plan.hit("rpc_send")
                if fault is not None:
                    fired.append(fault)

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert plan.hits("rpc_send") == 500
        assert len(fired) == 1  # exactly one thread saw ordinal 500


class TestGlobalHook:
    def test_idle_hook_returns_none(self):
        assert active_fault_plan() is None
        assert fault_hook("rpc_send") is None

    def test_install_route_and_clear(self):
        plan = FaultPlan([Fault("wal_append", at=1, kind="torn_tail",
                                arg=4)])
        install_fault_plan(plan)
        assert active_fault_plan() is plan
        fault = fault_hook("wal_append")
        assert fault.kind == "torn_tail" and fault.arg == 4
        clear_fault_plan()
        assert fault_hook("wal_append") is None
        # The plan keeps its history after uninstall (for assertions).
        assert plan.fired == [("wal_append", 1, "torn_tail")]
