"""Unit tests for the graph store and graph access constraints."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.graph import (DegreeConstraint, Graph, GraphAccessSchema,
                         LabelCountConstraint, discover_graph_access_schema)


@pytest.fixture
def graph():
    g = Graph()
    g.add_node(1, "person")
    g.add_node(2, "person")
    g.add_node(3, "city")
    g.add_edge(1, "friend", 2)
    g.add_edge(1, "lives_in", 3)
    g.add_edge(2, "lives_in", 3)
    return g


class TestGraph:
    def test_counts(self, graph):
        assert graph.num_nodes() == 3
        assert graph.num_edges() == 3

    def test_label_index(self, graph):
        assert graph.nodes_by_label("person") == [1, 2]
        assert graph.label_count("city") == 1
        assert graph.nodes_by_label("ghost") == []

    def test_adjacency(self, graph):
        assert graph.out_neighbors(1, "friend") == [2]
        assert graph.in_neighbors(3, "lives_in") == [1, 2]
        assert graph.out_degree(1, "lives_in") == 1
        assert graph.in_degree(2, "friend") == 1

    def test_has_edge(self, graph):
        assert graph.has_edge(1, "friend", 2)
        assert not graph.has_edge(2, "friend", 1)

    def test_duplicate_edge_ignored(self, graph):
        graph.add_edge(1, "friend", 2)
        assert graph.num_edges() == 3

    def test_relabel_rejected(self, graph):
        with pytest.raises(SchemaError, match="already has label"):
            graph.add_node(1, "city")

    def test_edge_to_unknown_node_rejected(self, graph):
        with pytest.raises(SchemaError, match="unknown node"):
            graph.add_edge(1, "friend", 99)

    def test_label_sets(self, graph):
        assert graph.node_labels() == {"person", "city"}
        assert graph.edge_labels() == {"friend", "lives_in"}


class TestConstraints:
    def test_label_count(self, graph):
        assert LabelCountConstraint("city", 1).satisfied_by(graph)
        assert not LabelCountConstraint("person", 1).satisfied_by(graph)

    def test_degree_out(self, graph):
        assert DegreeConstraint("friend", 1, "out").satisfied_by(graph)
        assert DegreeConstraint("lives_in", 1, "out",
                                "person").satisfied_by(graph)

    def test_degree_in(self, graph):
        assert not DegreeConstraint("lives_in", 1, "in",
                                    "city").satisfied_by(graph)
        assert DegreeConstraint("lives_in", 2, "in",
                                "city").satisfied_by(graph)

    def test_bad_direction(self):
        with pytest.raises(SchemaError):
            DegreeConstraint("friend", 1, "sideways")

    def test_schema_lookup(self, graph):
        schema = GraphAccessSchema([
            LabelCountConstraint("city", 4),
            DegreeConstraint("friend", 5, "out", "person"),
            DegreeConstraint("friend", 3, "out"),
        ])
        assert schema.label_bound("city") == 4
        assert schema.label_bound("person") is None
        # The generic constraint gives the tighter bound.
        assert schema.degree_bound("person", "friend", "out") == 3
        assert schema.degree_bound("city", "friend", "out") == 3
        assert schema.degree_bound("person", "friend", "in") is None

    def test_schema_satisfaction(self, graph):
        good = GraphAccessSchema([
            LabelCountConstraint("city", 1),
            DegreeConstraint("friend", 1, "out"),
        ])
        assert good.satisfied_by(graph)
        bad = GraphAccessSchema([LabelCountConstraint("person", 1)])
        assert not bad.satisfied_by(graph)


class TestDiscovery:
    def test_discovered_schema_is_sound(self, graph):
        schema = discover_graph_access_schema(graph)
        assert schema.satisfied_by(graph)
        assert len(schema) > 0

    def test_caps_respected(self, graph):
        schema = discover_graph_access_schema(graph, max_label_count=0)
        assert not schema.label_counts
