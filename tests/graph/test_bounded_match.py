"""Tests for bounded pattern matching vs. the brute-force baseline.

Invariant 7 of DESIGN.md: wherever a pattern is covered, bounded
matching equals subgraph matching — property-tested over random graphs.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanError
from repro.graph import (DegreeConstraint, Graph, GraphAccessSchema,
                         GraphAccessStats, LabelCountConstraint, MatchStats,
                         Pattern, PatternEdge, PatternNode, analyze_pattern,
                         bounded_match, subgraph_match)
from repro.workload import (SocialScale, generate_patterns,
                            graph_search_pattern, social_access_schema,
                            social_graph)


@pytest.fixture(scope="module")
def social():
    scale = SocialScale(persons=200, seed=5)
    return social_graph(scale), social_access_schema(scale), scale


class TestGraphSearchPattern:
    def test_pattern_is_covered(self, social):
        graph, access, _ = social
        pattern = graph_search_pattern(("person", 3))
        coverage = analyze_pattern(pattern, access)
        assert coverage.is_covered
        assert coverage.candidate_bound() <= 20  # max_friends.

    def test_bounded_equals_brute(self, social):
        graph, access, scale = social
        for person in (0, 7, 42, 133):
            pattern = graph_search_pattern(("person", person))
            assert bounded_match(pattern, graph, access) == \
                subgraph_match(pattern, graph)

    def test_access_is_tiny(self, social):
        graph, access, _ = social
        pattern = graph_search_pattern(("person", 3))
        stats = GraphAccessStats()
        bounded_match(pattern, graph, access, stats=stats)
        assert stats.nodes_fetched <= 3 * 20 + 2  # friends + verifications.

    def test_scan_baseline_does_more_work(self, social):
        graph, access, _ = social
        pattern = graph_search_pattern(("person", 3))
        bounded_stats = GraphAccessStats()
        bounded_match(pattern, graph, access, stats=bounded_stats)
        scan_stats = MatchStats()
        subgraph_match(pattern, graph, stats=scan_stats, strategy="scan")
        assert scan_stats.candidates_examined > \
            10 * bounded_stats.nodes_fetched


class TestCoverageAnalysis:
    def test_unanchored_pattern_not_covered(self):
        access = GraphAccessSchema([
            DegreeConstraint("friend", 5, "out", "person")])
        pattern = Pattern("floating",
                          [PatternNode("a", "person"),
                           PatternNode("b", "person")],
                          [PatternEdge("a", "friend", "b")])
        coverage = analyze_pattern(pattern, access)
        assert not coverage.is_covered
        assert "a" in coverage.uncovered

    def test_label_seed_covers(self):
        access = GraphAccessSchema([
            LabelCountConstraint("city", 8),
            DegreeConstraint("lives_in", 50, "in", "city")])
        pattern = Pattern("by_city",
                          [PatternNode("c", "city"),
                           PatternNode("p", "person")],
                          [PatternEdge("p", "lives_in", "c")])
        coverage = analyze_pattern(pattern, access)
        assert coverage.is_covered
        assert coverage.candidate_bound() == 8 * 50

    def test_unverifiable_edge_blocks(self):
        # Both endpoints coverable, but no adjacency constraint for the
        # "knows" edge between them.
        access = GraphAccessSchema([
            LabelCountConstraint("person", 10)])
        pattern = Pattern("pair",
                          [PatternNode("a", "person"),
                           PatternNode("b", "person")],
                          [PatternEdge("a", "knows", "b")])
        coverage = analyze_pattern(pattern, access)
        assert not coverage.is_covered
        assert coverage.unverified_edges

    def test_bounded_match_rejects_uncovered(self):
        access = GraphAccessSchema([])
        pattern = Pattern("p", [PatternNode("a", "person")], [])
        graph = Graph()
        graph.add_node(1, "person")
        with pytest.raises(PlanError, match="not covered"):
            bounded_match(pattern, graph, access)

    def test_explain_readable(self, social):
        _, access, _ = social
        pattern = graph_search_pattern(("person", 0))
        text = analyze_pattern(pattern, access).explain()
        assert "seed me" in text
        assert "covered" in text


class TestWorkloadAgreement:
    def test_coverage_rate_in_papers_band(self, social):
        graph, access, scale = social
        patterns = generate_patterns(80, scale, seed=99)
        rate = sum(1 for p in patterns
                   if analyze_pattern(p, access).is_covered) / 80
        assert 0.35 <= rate <= 0.85  # Paper reports 60%.

    def test_every_covered_pattern_agrees(self, social):
        graph, access, scale = social
        patterns = generate_patterns(40, scale, seed=4)
        checked = 0
        for pattern in patterns:
            coverage = analyze_pattern(pattern, access)
            if not coverage.is_covered:
                continue
            checked += 1
            assert bounded_match(pattern, graph, access,
                                 coverage=coverage) == \
                subgraph_match(pattern, graph)
        assert checked >= 5


# -- property test over random graphs ---------------------------------------

@st.composite
def random_world(draw):
    n = draw(st.integers(3, 12))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=20))
    anchor = draw(st.integers(0, n - 1))
    length = draw(st.integers(1, 2))
    return n, edges, anchor, length


@given(world=random_world())
@settings(max_examples=60, deadline=None)
def test_bounded_matches_brute_on_random_graphs(world):
    n, edges, anchor, length = world
    graph = Graph()
    for i in range(n):
        graph.add_node(i, "v")
    degree: dict[int, int] = {}
    for src, dst in edges:
        if degree.get(src, 0) >= 3 or src == dst:
            continue
        if not graph.has_edge(src, "e", dst):
            graph.add_edge(src, "e", dst)
            degree[src] = degree.get(src, 0) + 1
    access = GraphAccessSchema([DegreeConstraint("e", 3, "out", "v")])
    assert access.satisfied_by(graph)

    nodes = [PatternNode("x0", "v", constant=anchor)]
    pattern_edges = []
    for i in range(length):
        nodes.append(PatternNode(f"x{i + 1}", "v"))
        pattern_edges.append(PatternEdge(f"x{i}", "e", f"x{i + 1}"))
    pattern = Pattern("rnd", nodes, pattern_edges)
    coverage = analyze_pattern(pattern, access)
    assert coverage.is_covered
    assert bounded_match(pattern, graph, access, coverage=coverage) == \
        subgraph_match(pattern, graph)
