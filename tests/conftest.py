"""Shared fixtures: the paper's running examples as reusable objects."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.query import parse_cq


@pytest.fixture
def accident_schema() -> Schema:
    """The (simplified) UK road-accident schema of Example 1.1."""
    return Schema.from_dict({
        "Accident": ("aid", "district", "date"),
        "Casualty": ("cid", "aid", "class", "vid"),
        "Vehicle": ("vid", "driver", "age"),
    })


@pytest.fixture
def accident_access(accident_schema) -> AccessSchema:
    """ψ1–ψ4 of Example 1.1."""
    return AccessSchema(accident_schema, [
        AccessConstraint("Accident", ("date",), ("aid",), 610),
        AccessConstraint("Casualty", ("aid",), ("vid",), 192),
        AccessConstraint("Accident", ("aid",), ("district", "date"), 1),
        AccessConstraint("Vehicle", ("vid",), ("driver", "age"), 1),
    ])


@pytest.fixture
def accident_db(accident_schema, accident_access) -> Database:
    """A small instance satisfying ψ1–ψ4."""
    db = Database(accident_schema, accident_access)
    db.insert_many("Accident", [
        ("a1", "Queens Park", "1/5/2005"),
        ("a2", "Soho", "1/5/2005"),
        ("a3", "Queens Park", "2/5/2005"),
        ("a4", "Camden", "3/5/2005"),
    ])
    db.insert_many("Casualty", [
        ("c1", "a1", "driver", "v1"),
        ("c2", "a1", "passenger", "v2"),
        ("c3", "a2", "driver", "v3"),
        ("c4", "a3", "driver", "v4"),
        ("c5", "a4", "pedestrian", "v5"),
    ])
    db.insert_many("Vehicle", [
        ("v1", "alice", 34),
        ("v2", "bob", 51),
        ("v3", "carol", 28),
        ("v4", "dan", 61),
        ("v5", "eve", 45),
    ])
    db.check()
    return db


@pytest.fixture
def q0(accident_schema) -> "CQ":
    """Q0 of Example 1.1: driver ages for Queen's Park on 1/5/2005."""
    return parse_cq(
        "Q0(xa) :- Accident(aid, 'Queens Park', '1/5/2005'), "
        "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)")


@pytest.fixture
def example31():
    """The three (schema, access schema, query) triples of Example 3.1."""
    r1 = Schema.from_dict({"R1": ("A", "B", "E", "F")})
    a1 = AccessSchema(r1, [AccessConstraint("R1", ("A",), ("B",), 5),
                           AccessConstraint("R1", ("E",), ("F",), 5)])
    q1 = parse_cq("Q1(x, y) :- R1(x1, x, x2, y), x1 = 1, x2 = 1")

    r2 = Schema.from_dict({"R2": ("A", "B")})
    a2 = AccessSchema(r2, [AccessConstraint("R2", ("A",), ("B",), 1)])
    q2 = parse_cq("Q2(x) :- R2(x, x1), R2(x, x2), x1 = 1, x2 = 2")

    r3 = Schema.from_dict({"R3": ("A", "B", "C")})
    a3 = AccessSchema(r3, [AccessConstraint("R3", (), ("C",), 1),
                           AccessConstraint("R3", ("A", "B"), ("C",), 5)])
    q3 = parse_cq("Q3(x, y) :- R3(x1, x2, x), R3(z1, z2, y), R3(x, y, z3), "
                  "x1 = 1, x2 = 1")
    return {
        "1": (r1, a1, q1),
        "2": (r2, a2, q2),
        "3": (r3, a3, q3),
    }


@pytest.fixture
def example41():
    """Schema, access schema and the two queries of Example 4.1."""
    schema = Schema.from_dict({"R": ("A", "B")})
    access = AccessSchema(schema, [AccessConstraint("R", ("A",), ("B",), 3)])
    q1 = parse_cq("Q1(x) :- R(w, x), R(y, w), R(x, z), w = 1")
    q2 = parse_cq("Q2(x, y) :- R(w, x), R(y, w), w = 1")
    return schema, access, q1, q2


@pytest.fixture
def example45():
    """Schema, access schema and query of Example 4.5."""
    schema = Schema.from_dict({"R": ("A", "B", "C")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 4),
        AccessConstraint("R", ("B",), ("C",), 1),
    ])
    q = parse_cq("Q(x, y) :- R(u, x, y), u = 1")
    return schema, access, q
