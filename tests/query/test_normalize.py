"""Unit tests for query normalization."""

from __future__ import annotations

import pytest

from repro import QueryError, Schema, UnsafeQueryError
from repro.query import (Const, Var, as_ucq, extract_inline_constants,
                         normalize_cq, parse_cq, parse_query, positive_to_ucq,
                         rename_apart)
from repro.query.normalize import check_safety


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ("A", "B"), "S": ("A",), "T": ("A",)})


class TestExtractInlineConstants:
    def test_pulls_constants_out(self, schema):
        q = parse_cq("Q(x) :- R(x, 1)")
        normalized = extract_inline_constants(q)
        assert all(not atom.constants() for atom in normalized.atoms)
        assert any(eq.is_var_const for eq in normalized.equalities)

    def test_idempotent(self, schema):
        q = parse_cq("Q(x) :- R(x, y), y = 1")
        assert extract_inline_constants(q) is q

    def test_repeated_constant_gets_fresh_vars(self):
        q = parse_cq("Q(x) :- R(x, 1), R(x, 1)")
        normalized = extract_inline_constants(q)
        eqs = [e for e in normalized.equalities if e.right == Const(1)]
        assert len(eqs) == 2
        assert eqs[0].left != eqs[1].left


class TestSafety:
    def test_safe_via_atom(self):
        check_safety(parse_cq("Q(x) :- R(x, y)"))

    def test_safe_via_constant_chain(self):
        check_safety(parse_cq("Q(x) :- S(y), x = z, z = 1"))

    def test_unsafe_rejected(self):
        with pytest.raises(UnsafeQueryError):
            check_safety(parse_cq("Q(x) :- S(y)"))

    def test_unsafe_var_var_only(self):
        with pytest.raises(UnsafeQueryError):
            check_safety(parse_cq("Q(x) :- S(y), x = z"))


class TestNormalizeCQ:
    def test_arity_mismatch(self, schema):
        with pytest.raises(QueryError, match="arity"):
            normalize_cq(parse_cq("Q(x) :- R(x)"), schema)

    def test_unknown_relation(self, schema):
        with pytest.raises(Exception):
            normalize_cq(parse_cq("Q(x) :- Missing(x)"), schema)

    def test_full_pipeline(self, schema):
        q = normalize_cq(parse_cq("Q(x) :- R(x, 'v')"), schema)
        assert all(not atom.constants() for atom in q.atoms)


class TestRenameApart:
    def test_bound_vars_renamed(self):
        q = parse_cq("Q(x) :- R(x, y)")
        renamed = rename_apart(q, {"y"})
        assert Var("y") not in renamed.variables()
        assert renamed.head == q.head

    def test_no_clash_no_change(self):
        q = parse_cq("Q(x) :- R(x, y)")
        assert rename_apart(q, {"z"}) is q

    def test_keep_head_false_renames_everything(self):
        q = parse_cq("Q(x) :- R(x, y)")
        renamed = rename_apart(q, {"x", "y"}, keep_head=False)
        assert Var("x") not in renamed.variables()


class TestPositiveToUCQ:
    def test_or_splits(self, schema):
        q = parse_query("Q(x) := S(x) OR T(x)")
        u = positive_to_ucq(q, schema)
        assert len(u.disjuncts) == 2
        assert {d.atoms[0].relation for d in u.disjuncts} == {"S", "T"}

    def test_and_distributes_over_or(self, schema):
        q = parse_query("Q(x) := R(x, y) AND (S(x) OR T(x))")
        u = positive_to_ucq(q, schema)
        assert len(u.disjuncts) == 2
        for disjunct in u.disjuncts:
            assert len(disjunct.atoms) == 2

    def test_nested_or(self, schema):
        q = parse_query(
            "Q(x) := (S(x) OR T(x)) AND (EXISTS y. R(x, y) OR S(x))")
        u = positive_to_ucq(q, schema)
        assert len(u.disjuncts) == 4

    def test_quantifier_capture_avoided(self, schema):
        # The same bound name y in both branches must not collide.
        q = parse_query(
            "Q(x) := (EXISTS y. R(x, y)) AND (EXISTS y. R(y, x))")
        u = positive_to_ucq(q, schema)
        disjunct = u.disjuncts[0]
        names = {v.name for v in disjunct.bound_variables()}
        assert len(names) == 2

    def test_as_ucq_on_cq(self, schema):
        q = parse_cq("Q(x) :- R(x, y)")
        u = as_ucq(q, schema)
        assert len(u.disjuncts) == 1

    def test_as_ucq_rejects_fo(self, schema):
        q = parse_query("Q(x) := NOT S(x)")
        with pytest.raises(QueryError):
            as_ucq(q, schema)
