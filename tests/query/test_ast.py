"""Unit tests for query terms and ASTs."""

from __future__ import annotations

import pytest

from repro import CQ, UCQ, Atom, Const, Equality, QueryError, Var
from repro.query.ast import (FAnd, FAtom, FExists, FForAll, FNot, FOQuery, FOr,
                             PositiveQuery, conjunction, cq_to_formula,
                             disjunction)


class TestTerms:
    def test_var_equality(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_const_equality_respects_type(self):
        assert Const(1) == Const(1)
        assert Const("1") != Const(1)

    def test_hashable(self):
        assert len({Var("x"), Var("x"), Const(1)}) == 2

    def test_str(self):
        assert str(Var("x")) == "x"
        assert str(Const("a")) == "'a'"
        assert str(Const(3)) == "3"


class TestAtom:
    def test_variables_and_constants(self):
        atom = Atom("R", (Var("x"), Const(1), Var("x")))
        assert atom.variables() == [Var("x"), Var("x")]
        assert atom.constants() == [Const(1)]
        assert atom.arity == 3

    def test_substitute(self):
        atom = Atom("R", (Var("x"), Var("y")))
        image = atom.substitute({Var("x"): Const(2)})
        assert image == Atom("R", (Const(2), Var("y")))

    def test_bad_term_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ("not-a-term",))


class TestEquality:
    def test_normal_form_var_first(self):
        eq = Equality(Const(1), Var("x"))
        assert eq.left == Var("x")
        assert eq.right == Const(1)
        assert eq.is_var_const

    def test_var_var(self):
        eq = Equality(Var("x"), Var("y"))
        assert eq.is_var_var
        assert set(eq.variables()) == {Var("x"), Var("y")}

    def test_substitute_on_both_sides(self):
        eq = Equality(Var("x"), Var("y"))
        image = eq.substitute({Var("y"): Const(3)})
        assert image.is_var_const


class TestCQ:
    def make(self):
        return CQ("Q", (Var("x"),),
                  (Atom("R", (Var("x"), Var("y"))),
                   Atom("S", (Var("y"),))),
                  (Equality(Var("y"), Const(1)),))

    def test_variable_sets(self):
        q = self.make()
        assert q.variables() == {Var("x"), Var("y")}
        assert q.free_variables() == {Var("x")}
        assert q.bound_variables() == {Var("y")}
        assert q.atom_variables() == {Var("x"), Var("y")}

    def test_constants(self):
        assert self.make().constants() == {Const(1)}

    def test_occurrence_count(self):
        q = self.make()
        # y occurs in R, in S and in the equality.
        assert q.occurrence_count(Var("y")) == 3
        assert q.occurrence_count(Var("x")) == 1

    def test_head_must_be_vars(self):
        with pytest.raises(QueryError):
            CQ("Q", (Const(1),), ())

    def test_const_const_equality_rejected(self):
        with pytest.raises(QueryError):
            CQ("Q", (), (), (Equality(Const(1), Const(2)),))

    def test_specialize_adds_equalities(self):
        q = self.make()
        specialized = q.specialize({Var("x"): Const("c")})
        assert len(specialized.equalities) == 2
        assert specialized.head == q.head

    def test_substitute_head_to_constant_rejected(self):
        q = self.make()
        with pytest.raises(QueryError):
            q.substitute({Var("x"): Const(1)})

    def test_substitute_drops_trivial_equalities(self):
        q = CQ("Q", (Var("x"),), (Atom("R", (Var("x"), Var("y"))),),
               (Equality(Var("x"), Var("y")),))
        merged = q.substitute({Var("y"): Var("x")})
        assert merged.equalities == ()

    def test_str_roundtrip_shape(self):
        assert str(self.make()) == "Q(x) :- R(x, y), S(y), y = 1"

    def test_boolean_query(self):
        q = CQ("Q", (), (Atom("R", (Var("x"),)),))
        assert q.arity == 0

    def test_size(self):
        assert self.make().size() > 0


class TestUCQ:
    def test_arity_check(self):
        q1 = CQ("Q", (Var("x"),), (Atom("R", (Var("x"),)),))
        q2 = CQ("Q", (Var("x"), Var("y")),
                (Atom("S", (Var("x"), Var("y"))),))
        with pytest.raises(QueryError):
            UCQ("Q", (q1, q2))

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            UCQ("Q", ())

    def test_relation_names(self):
        q1 = CQ("Q", (Var("x"),), (Atom("R", (Var("x"),)),))
        q2 = CQ("Q", (Var("x"),), (Atom("S", (Var("x"),)),))
        assert UCQ("Q", (q1, q2)).relation_names() == {"R", "S"}


class TestFormulas:
    def test_positivity(self):
        atom = FAtom(Atom("R", (Var("x"),)))
        assert atom.is_positive()
        assert not FNot(atom).is_positive()
        assert not FForAll((Var("x"),), atom).is_positive()
        assert FExists((Var("x"),), atom).is_positive()
        assert FAnd([atom, atom]).is_positive()

    def test_free_variables_under_quantifier(self):
        body = FExists((Var("y"),),
                       FAtom(Atom("R", (Var("x"), Var("y")))))
        assert body.free_variables() == {Var("x")}
        assert body.all_variables() == {Var("x"), Var("y")}

    def test_positive_query_rejects_negation(self):
        body = FNot(FAtom(Atom("R", (Var("x"),))))
        with pytest.raises(QueryError):
            PositiveQuery("Q", (Var("x"),), body)

    def test_fo_query_accepts_negation(self):
        body = FNot(FAtom(Atom("R", (Var("x"),))))
        q = FOQuery("Q", (Var("x"),), body)
        assert not q.is_positive()

    def test_conjunction_flattens(self):
        a = FAtom(Atom("R", (Var("x"),)))
        nested = conjunction([FAnd([a, a]), a])
        assert isinstance(nested, FAnd)
        assert len(nested.children) == 3

    def test_disjunction_singleton(self):
        a = FAtom(Atom("R", (Var("x"),)))
        assert disjunction([a]) is a

    def test_cq_to_formula_quantifies_bound_vars(self):
        q = CQ("Q", (Var("x"),),
               (Atom("R", (Var("x"), Var("y"))),))
        formula = cq_to_formula(q)
        assert isinstance(formula, FExists)
        assert formula.variables == (Var("y"),)

    def test_empty_and_or_rejected(self):
        with pytest.raises(QueryError):
            FAnd([])
        with pytest.raises(QueryError):
            FOr([])
