"""Unit tests for variable classification (paper, Section 3.2 / Example 3.8)."""

from __future__ import annotations

import pytest

from repro.query import Const, Var, analyze_variables, parse_cq


class TestExample38:
    """Q(x, y, u, v) = R(x, y) ∧ x=1 ∧ x=y ∧ u=1 ∧ u=v (Example 3.8)."""

    @pytest.fixture
    def analysis(self):
        q = parse_cq("Q(x, y, u, v) :- R(x, y), x = 1, x = y, u = 1, u = v")
        return analyze_variables(q)

    def test_eq_class(self, analysis):
        assert analysis.eq_class(Var("x")) == {Var("x"), Var("y")}

    def test_eqplus_class_merges_same_constant(self, analysis):
        assert analysis.eqplus_class(Var("x")) == {
            Var("x"), Var("y"), Var("u"), Var("v")}

    def test_x_and_y_data_dependent(self, analysis):
        assert analysis.is_data_dependent(Var("x"))
        assert analysis.is_data_dependent(Var("y"))

    def test_u_data_independent_despite_eqplus(self, analysis):
        # The paper's point: u ∈ eq+(x, Q), yet u is data-independent.
        assert analysis.is_data_independent(Var("u"))
        assert analysis.is_data_independent(Var("v"))

    def test_constant_vars(self, analysis):
        for name in ("x", "y", "u", "v"):
            assert analysis.is_constant_var(Var(name))

    def test_constant_of(self, analysis):
        assert analysis.constant_of(Var("y")) == Const(1)
        assert analysis.pinned_value(Var("v")) == 1


class TestClassicalSatisfiability:
    def test_two_constants_one_class(self):
        q = parse_cq("Q(x) :- R(x), x = 1, x = 2")
        assert not analyze_variables(q).classically_satisfiable

    def test_transitive_conflict(self):
        q = parse_cq("Q(x) :- R(x), x = y, y = 1, x = 2")
        assert not analyze_variables(q).classically_satisfiable

    def test_same_constant_twice_fine(self):
        q = parse_cq("Q(x) :- R(x), x = 1, y = 1, R(y)")
        analysis = analyze_variables(q)
        assert analysis.classically_satisfiable
        assert analysis.same_eqplus(Var("x"), Var("y"))
        assert not analysis.same_eq(Var("x"), Var("y"))


class TestMisc:
    def test_no_equalities(self):
        q = parse_cq("Q(x) :- R(x, y)")
        analysis = analyze_variables(q)
        assert analysis.constant_of(Var("x")) is None
        assert not analysis.constant_vars
        assert analysis.is_data_dependent(Var("y"))

    def test_var_joined_to_atom_var_is_dependent(self):
        q = parse_cq("Q(z) :- R(x, y), z = x")
        analysis = analyze_variables(q)
        assert analysis.is_data_dependent(Var("z"))

    def test_data_independent_vars_listing(self):
        q = parse_cq("Q(u) :- R(x, y), u = 1")
        analysis = analyze_variables(q)
        assert analysis.data_independent_vars() == {Var("u")}
