"""Unit tests for the query parser."""

from __future__ import annotations

import pytest

from repro import CQ, UCQ, Const, ParseError, PositiveQuery, Var
from repro.query import FOQuery, parse_cq, parse_query, parse_ucq
from repro.query.ast import Atom, Equality


class TestCQParsing:
    def test_basic(self):
        q = parse_cq("Q(x) :- R(x, y), y = 1")
        assert isinstance(q, CQ)
        assert q.head == (Var("x"),)
        assert q.atoms == (Atom("R", (Var("x"), Var("y"))),)
        assert q.equalities == (Equality(Var("y"), Const(1)),)

    def test_inline_constants(self):
        q = parse_cq("Q(x) :- R(x, 'hello world', 3, -2.5)")
        atom = q.atoms[0]
        assert atom.terms[1] == Const("hello world")
        assert atom.terms[2] == Const(3)
        assert atom.terms[3] == Const(-2.5)

    def test_boolean_query(self):
        q = parse_cq("Q() :- R(x)")
        assert q.arity == 0

    def test_empty_body_true(self):
        q = parse_cq("Q() :- true")
        assert q.atoms == ()

    def test_var_var_equality(self):
        q = parse_cq("Q(x, y) :- R(x), S(y), x = y")
        assert q.equalities[0].is_var_var

    def test_escaped_quote(self):
        q = parse_cq(r"Q(x) :- R(x, 'it\'s')")
        assert q.atoms[0].terms[1] == Const("it's")

    def test_parse_error_position(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x) :- R(x,, y)")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x) ! R(x)")

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x) R(x)")


class TestUCQParsing:
    def test_two_rules(self):
        u = parse_ucq("Q(x) :- R(x) ; Q(x) :- S(x)")
        assert isinstance(u, UCQ)
        assert len(u.disjuncts) == 2
        assert u.disjuncts[0].name == "Q_1"

    def test_single_rule_wrapped(self):
        u = parse_ucq("Q(x) :- R(x)")
        assert isinstance(u, UCQ)
        assert len(u.disjuncts) == 1

    def test_head_names_must_match(self):
        with pytest.raises(ParseError, match="share a head name"):
            parse_ucq("Q(x) :- R(x) ; P(x) :- S(x)")

    def test_trailing_semicolon_ok(self):
        u = parse_ucq("Q(x) :- R(x) ; Q(x) :- S(x) ;")
        assert len(u.disjuncts) == 2


class TestFormulaParsing:
    def test_positive(self):
        q = parse_query("Q(x) := EXISTS y. (R(x, y) AND (S(y) OR T(y)))")
        assert isinstance(q, PositiveQuery)

    def test_fo_with_not(self):
        q = parse_query("Q(x) := R(x) AND NOT S(x)")
        assert isinstance(q, FOQuery)
        assert not q.is_positive()

    def test_forall(self):
        q = parse_query("Q(x) := FORALL y. (NOT R(x, y) OR S(y))")
        assert isinstance(q, FOQuery)

    def test_precedence_and_binds_tighter(self):
        q = parse_query("Q(x) := R(x) AND S(x) OR T(x)")
        from repro.query.ast import FOr
        assert isinstance(q.body, FOr)

    def test_multi_var_quantifier(self):
        q = parse_query("Q() := EXISTS x, y. R(x, y)")
        assert isinstance(q, PositiveQuery)

    def test_equality_in_formula(self):
        q = parse_query("Q(x) := EXISTS y. (R(x, y) AND y = 1)")
        assert isinstance(q, PositiveQuery)

    def test_parse_cq_rejects_formula(self):
        with pytest.raises(ParseError, match="expected a CQ"):
            parse_cq("Q(x) := R(x) OR S(x)")

    def test_parse_ucq_rejects_fo(self):
        with pytest.raises(ParseError, match="expected a UCQ"):
            parse_ucq("Q(x) := NOT R(x)")
