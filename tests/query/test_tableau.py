"""Unit tests for tableaux, homomorphisms and classical containment."""

from __future__ import annotations

import pytest

from repro import QueryError
from repro.query import (Const, Var, classically_contained,
                         classically_equivalent, core_tableau,
                         find_homomorphism, parse_cq, resolved_tableau,
                         tableau_to_cq)
from repro.query.tableau import Row


class TestResolvedTableau:
    def test_pinned_vars_become_constants(self):
        q = parse_cq("Q(x) :- R(x, y), y = 1")
        t = resolved_tableau(q)
        assert t.rows[0].terms[1] == Const(1)

    def test_eq_classes_collapse(self):
        q = parse_cq("Q(x) :- R(x, y), S(z), x = z")
        t = resolved_tableau(q)
        rep = t.rows[0].terms[0]
        assert t.rows[1].terms[0] == rep

    def test_summary_resolved(self):
        q = parse_cq("Q(x) :- R(x, y), x = 5")
        t = resolved_tableau(q)
        assert t.summary == (Const(5),)

    def test_unsat_rejected(self):
        q = parse_cq("Q(x) :- R(x, y), x = 1, x = 2")
        with pytest.raises(QueryError):
            resolved_tableau(q)


class TestTableauToCQ:
    def test_roundtrip_is_classically_equivalent(self):
        q = parse_cq("Q(x) :- R(x, y), S(y), y = 1, x = z, S(z)")
        back = tableau_to_cq(resolved_tableau(q))
        assert classically_equivalent(q, back)

    def test_constant_summary_handled(self):
        q = parse_cq("Q(x) :- R(x, y), x = 7")
        back = tableau_to_cq(resolved_tableau(q))
        assert classically_equivalent(q, back)


class TestHomomorphism:
    def test_finds_simple_fold(self):
        src = [Row("R", (Var("a"), Var("b")))]
        dst = [Row("R", (Const(1), Const(2)))]
        hom = find_homomorphism(src, dst)
        assert hom == {Var("a"): Const(1), Var("b"): Const(2)}

    def test_respects_constants(self):
        src = [Row("R", (Const(1),))]
        dst = [Row("R", (Const(2),))]
        assert find_homomorphism(src, dst) is None

    def test_respects_fixed(self):
        src = [Row("R", (Var("a"),))]
        dst = [Row("R", (Const(1),))]
        assert find_homomorphism(src, dst, {Var("a"): Const(2)}) is None
        assert find_homomorphism(src, dst, {Var("a"): Const(1)}) is not None

    def test_consistency_across_rows(self):
        src = [Row("R", (Var("a"), Var("b"))), Row("S", (Var("b"),))]
        dst = [Row("R", (Const(1), Const(2))), Row("S", (Const(3),))]
        assert find_homomorphism(src, dst) is None
        dst.append(Row("S", (Const(2),)))
        assert find_homomorphism(src, dst) is not None


class TestCore:
    def test_folds_redundant_atom(self):
        # R(x,y) ∧ R(x,z) folds to R(x,y) when z is free to map to y.
        q = parse_cq("Q(x) :- R(x, y), R(x, z)")
        core = core_tableau(resolved_tableau(q))
        assert len(core.rows) == 1

    def test_keeps_necessary_atoms(self):
        q = parse_cq("Q(x, y) :- R(x, y), R(y, x)")
        core = core_tableau(resolved_tableau(q))
        assert len(core.rows) == 2

    def test_constants_block_folding(self):
        q = parse_cq("Q(x) :- R(x, y), R(x, z), z = 1")
        core = core_tableau(resolved_tableau(q))
        # R(x, 1) cannot absorb R(x, y)? It can: y maps to 1.  But
        # R(x, y) cannot absorb R(x, 1).  Expect exactly one row left.
        assert len(core.rows) == 1
        assert core.rows[0].terms[1] == Const(1)


class TestClassicalContainment:
    def test_more_atoms_contained_in_fewer(self):
        q_small = parse_cq("Q(x) :- R(x, y)")
        q_big = parse_cq("Q(x) :- R(x, y), S(y)")
        assert classically_contained(q_big, q_small)
        assert not classically_contained(q_small, q_big)

    def test_constant_specializes(self):
        generic = parse_cq("Q(x) :- R(x, y)")
        specific = parse_cq("Q(x) :- R(x, y), y = 1")
        assert classically_contained(specific, generic)
        assert not classically_contained(generic, specific)

    def test_unsat_contained_in_everything(self):
        unsat = parse_cq("Q(x) :- R(x, y), x = 1, x = 2")
        other = parse_cq("Q(x) :- S(x)")
        assert classically_contained(unsat, other)
        assert not classically_contained(other, unsat)

    def test_equivalence_up_to_renaming(self):
        q1 = parse_cq("Q(x) :- R(x, y), S(y)")
        q2 = parse_cq("Q(a) :- R(a, b), S(b)")
        assert classically_equivalent(q1, q2)

    def test_head_constants(self):
        q1 = parse_cq("Q(x) :- R(x, y), x = 1")
        q2 = parse_cq("Q(x) :- R(x, y)")
        assert classically_contained(q1, q2)

    def test_arity_mismatch_not_contained(self):
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(x, y) :- R(x, y)")
        assert not classically_contained(q1, q2)
