"""Process-sharded storage: the code-space worker protocol, WAL-shipped
replicas (driven in-process against a MemoryBackend oracle) and the
coordinator's failure handling (worker death, replica staleness,
writer compaction).

The backend-conformance suite in ``test_backend.py`` already runs the
full contract against a live ``procshard`` fleet; this file covers
what conformance cannot see — the wire protocol itself and the
recovery/replication edges.
"""

from __future__ import annotations

import tempfile
import threading

import pytest

from repro import AccessConstraint, AccessSchema, Schema
from repro.errors import StorageError
from repro.storage.backend import MemoryBackend
from repro.storage.disk import DiskBackend
from repro.storage.indexes import AccessIndex
from repro.storage.procshard import (CodeIndex, ProcessShardedBackend,
                                     ReplicaState, WorkerState)
from repro.storage.procshard.replica import ReplicaError


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ("A", "B", "C"), "S": ("D",)})


@pytest.fixture
def aschema(schema):
    return AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B", "C"), 64),
        AccessConstraint("S", (), ("D",), 64),
    ])


def norm_flat(result):
    """(columns, length) -> a sorted row list, order-free comparison."""
    cols, length = result
    if not cols or not length:
        return length
    return sorted(zip(*[list(col) for col in cols]))


def norm_many(results):
    return [norm_flat(entry) for entry in results]


ROWS = [(i % 7, i, i * 2) for i in range(60)]


def procshard(schema, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("fanout_threshold", 0)
    return ProcessShardedBackend(schema, **kwargs)


def oracle(schema, aschema, rows=ROWS):
    backend = MemoryBackend(schema)
    backend.attach_access_schema(aschema)
    backend.insert_rows("R", rows)
    return backend


class TestCodeIndex:
    """CodeIndex must mirror AccessIndex witness-count semantics and
    lookup output bit for bit — a worker's answer is only correct
    because these two stay in lockstep."""

    def _pair(self, schema):
        constraint = AccessConstraint("R", ("A",), ("B", "C"), 64)
        relation = constraint.validate_against(schema)
        from repro.storage.encoding import ValueDictionary
        dictionary = ValueDictionary()
        access = AccessIndex(constraint, relation, dictionary)
        code = CodeIndex(x_len=1, width=3)
        return access, code, dictionary

    def _fill(self, access, code, dictionary, rows):
        for row in rows:
            coded = dictionary.encode_row(row)
            access.add(row, coded)
            code.add(tuple(coded))

    def test_lookup_parity_with_access_index(self, schema):
        access, code, dictionary = self._pair(schema)
        self._fill(access, code, dictionary, ROWS)
        keys = [dictionary.encode(k) for k in range(7)]
        for row_proj, dedup in ((None, False), ((1, 2), False),
                                ((0,), True), ((2,), True),
                                ((2, 0), True)):
            want = access.lookup_flat_encoded(keys, row_proj, dedup)
            got = code.lookup_flat_encoded(keys, row_proj, dedup)
            assert norm_flat(got) == norm_flat(want)
            assert got[1] == want[1]
            want_many = access.lookup_many_encoded(keys, row_proj, dedup)
            got_many = code.lookup_many_encoded(keys, row_proj, dedup)
            assert norm_many(got_many) == norm_many(want_many)

    def test_witness_counts_survive_projection_collapse(self, schema):
        access, code, dictionary = self._pair(schema)
        # Two distinct rows that collapse onto one group under a (2,)
        # projection — the witness count is what keeps the projected
        # group alive when only one of them is deleted.
        rows = [(1, "a", 10), (1, "b", 10)]
        self._fill(access, code, dictionary, rows)
        key = dictionary.encode(1)
        assert norm_flat(code.lookup_flat_encoded(
            [key], (2,), True)) == norm_flat(access.lookup_flat_encoded(
                [key], (2,), True))
        # Removing one witness must not drop the projected group.
        coded = dictionary.encode_row((1, "a", 10))
        access.remove((1, "a", 10))
        code.remove(tuple(coded))
        got = code.lookup_flat_encoded([key], None, False)
        want = access.lookup_flat_encoded([key], None, False)
        assert norm_flat(got) == norm_flat(want)
        assert got[1] == 1

    def test_remove_last_witness_drops_group(self, schema):
        access, code, dictionary = self._pair(schema)
        self._fill(access, code, dictionary, [(1, "a", 10)])
        coded = tuple(dictionary.encode_row((1, "a", 10)))
        code.remove(coded)
        assert code.group_count() == 0
        assert code.lookup_flat_encoded(
            [dictionary.encode(1)], None, False)[1] == 0
        # Removing a never-added row is a no-op, not an error.
        code.remove(coded)


class TestWorkerProtocol:
    """Drive WorkerState.handle in-process: requests and replies are
    exactly what crosses the pipe."""

    def _attached(self):
        state = WorkerState()
        # cid 0: R with |X|=1, width 3.
        state.handle(("attach", [(0, 1, 3)], {0: [(1, 2, 3), (1, 4, 5)]},
                      ["v0", "v1"]))
        return state

    def test_attach_then_fetch(self):
        state = self._attached()
        cols, length = state.handle(("ff", 0, [1], None, False))
        assert length == 2
        assert sorted(zip(*[list(c) for c in cols])) == \
            [(1, 2, 3), (1, 4, 5)]
        [(cols, length)] = state.handle(("fm", 0, [9], None, False))
        assert length == 0

    def test_write_applies_delta_and_ops(self):
        state = self._attached()
        state.handle(("write", [(0, False, [(7, 8, 9)])], ["v2"]))
        assert state.values == ["v0", "v1", "v2"]
        assert state.handle(("ff", 0, [7], None, False))[1] == 1
        state.handle(("write", [(0, True, [(7, 8, 9)])], []))
        assert state.handle(("ff", 0, [7], None, False))[1] == 0

    def test_clear_and_stats(self):
        state = self._attached()
        stats = state.handle(("stats",))
        assert stats == {"constraints": 1, "dictionary_size": 2,
                         "groups": 1}
        state.handle(("clear",))
        assert state.handle(("stats",))["groups"] == 0
        assert state.handle(("ping",)) == "pong"

    def test_unknown_op_is_an_error(self):
        with pytest.raises(ValueError, match="unknown worker op"):
            WorkerState().handle(("warp-core-breach",))


def disk_fixture(schema, aschema, tmp_path, rows=ROWS):
    backend = DiskBackend(schema, tmp_path / "writer")
    backend.attach_access_schema(aschema)
    backend.insert_rows("R", rows)
    return backend


def bootstrap_payload(backend: DiskBackend, aschema, *,
                      after_snapshot: bool) -> dict:
    """Build the coordinator's bootstrap payload by hand, from the
    writer's real on-disk state — the same bytes _bootstrap_replica
    ships."""
    import json
    if after_snapshot:
        current = (backend.data_dir / "CURRENT").read_text().strip()
        snap_dir = backend.data_dir / current
        manifest = json.loads((snap_dir / "manifest.json").read_text())
        segments = {name: (snap_dir / f"{name}.seg").read_bytes()
                    for name in backend.schema.relation_names()}
        generations = manifest["generations"]
    else:
        segments = {}
        generations = {name: 0 for name in backend.schema.relation_names()}
    wal = (backend._wal_path.read_bytes()
           if backend._wal_path.is_file() else b"")
    specs = []
    for cid, constraint in enumerate(aschema):
        index = backend._indexes[id(constraint)]
        specs.append((cid, constraint.relation_name,
                      list(index.x_positions), list(index.y_positions)))
    return {"segments": segments, "generations": generations,
            "wal": wal, "values": backend.dictionary.values_from(0),
            "specs": specs, "snapshot_id": backend._snapshot_id}


class TestReplicaState:
    """The replication protocol, driven file-free and process-free
    against the writer's real WAL bytes and a MemoryBackend oracle."""

    def test_bootstrap_from_wal_only(self, schema, aschema, tmp_path):
        writer = disk_fixture(schema, aschema, tmp_path)
        replica = ReplicaState()
        result = replica.bootstrap(
            bootstrap_payload(writer, aschema, after_snapshot=False))
        assert result["generations"] == writer._generations
        assert sorted(replica.stores["R"]) == sorted(ROWS)
        assert result["wal_offset"] == writer._wal_path.stat().st_size
        writer.close()

    def test_bootstrap_from_snapshot_plus_tail(self, schema, aschema,
                                               tmp_path):
        writer = disk_fixture(schema, aschema, tmp_path)
        writer.snapshot()
        tail_rows = [(100 + i, i, i) for i in range(10)]
        writer.insert_rows("R", tail_rows)
        writer.delete_rows("R", ROWS[:5])
        replica = ReplicaState()
        replica.bootstrap(
            bootstrap_payload(writer, aschema, after_snapshot=True))
        assert sorted(replica.stores["R"]) == sorted(writer.scan("R"))
        assert replica.generations == writer._generations
        assert replica.snapshot_id == writer._snapshot_id == 1
        writer.close()

    def test_torn_tail_shipped_mid_segment_at_every_offset(
            self, schema, aschema, tmp_path):
        """Truncate the shipped WAL chunk at *every* byte boundary: the
        replica must consume exactly the intact prefix, stay a valid
        prefix-state of the oracle, and converge once the remainder is
        shipped."""
        writer = disk_fixture(schema, aschema, tmp_path,
                              rows=ROWS[:12])
        writer.delete_rows("R", ROWS[:3])
        wal = writer._wal_path.read_bytes()
        payload = bootstrap_payload(writer, aschema, after_snapshot=False)
        final = sorted(writer.scan("R"))
        for cut in range(len(wal) + 1):
            replica = ReplicaState()
            empty = dict(payload)
            empty["wal"] = b""  # bootstrap ships values; WAL by hand
            replica.bootstrap(empty)
            first = replica.apply_wal(wal[:cut], [])
            assert first["consumed"] <= cut
            assert replica.wal_offset == first["consumed"]
            # Generations never exceed the writer's.
            assert all(replica.generations[name] <= generation
                       for name, generation
                       in writer._generations.items())
            second = replica.apply_wal(wal[first["consumed"]:], [])
            assert first["consumed"] + second["consumed"] == len(wal)
            assert sorted(replica.stores["R"]) == final
            assert replica.generations == writer._generations
        writer.close()

    def test_generation_monotonicity_and_convergent_reapply(
            self, schema, aschema, tmp_path):
        """Re-shipping an already-applied byte range must be a no-op
        (membership checks make application convergent) and can never
        move a generation backwards."""
        writer = disk_fixture(schema, aschema, tmp_path, rows=ROWS[:10])
        wal = writer._wal_path.read_bytes()
        replica = ReplicaState()
        replica.bootstrap(
            bootstrap_payload(writer, aschema, after_snapshot=False))
        before = dict(replica.generations)
        rows_before = sorted(replica.stores["R"])
        replica.apply_wal(wal, [])  # the whole log, again
        assert replica.generations == before
        assert sorted(replica.stores["R"]) == rows_before
        writer.close()

    def test_missed_dictionary_delta_is_a_replica_error(
            self, schema, aschema, tmp_path):
        writer = disk_fixture(schema, aschema, tmp_path, rows=ROWS[:5])
        replica = ReplicaState()
        replica.bootstrap(
            bootstrap_payload(writer, aschema, after_snapshot=False))
        offset = writer._wal_path.stat().st_size
        writer.insert_rows("R", [(999, "unseen-value", 1)])
        chunk = writer._wal_path.read_bytes()[offset:]
        with pytest.raises(ReplicaError, match="re-bootstrap"):
            replica.apply_wal(chunk, [])  # delta withheld on purpose
        writer.close()

    def test_clear_record_replicates(self, schema, aschema, tmp_path):
        writer = disk_fixture(schema, aschema, tmp_path, rows=ROWS[:8])
        replica = ReplicaState()
        replica.bootstrap(
            bootstrap_payload(writer, aschema, after_snapshot=False))
        offset = writer._wal_path.stat().st_size
        writer.clear()
        chunk = writer._wal_path.read_bytes()[offset:]
        replica.apply_wal(chunk, [])
        assert not replica.stores["R"]
        assert replica.generations == writer._generations
        writer.close()


class TestProcessShardedBackend:
    """End-to-end coordinator behaviour that conformance cannot reach:
    routing decisions, worker death, replica staleness and compaction."""

    def test_small_batches_stay_local(self, schema, aschema):
        backend = procshard(schema, fanout_threshold=1000)
        backend.attach_access_schema(aschema)
        backend.insert_rows("R", ROWS)
        constraint = aschema.constraints[0]
        keys = [backend.dictionary.encode(k) for k in range(7)]
        want = norm_flat(oracle(schema, aschema).fetch_flat_encoded(
            aschema.constraints[0], keys))
        assert norm_flat(backend.fetch_flat_encoded(constraint, keys)) \
            == want
        counters = backend.counters()
        assert counters["local_reads_total"] >= 1
        assert counters["worker_reads_total"] == 0
        backend.close()

    def test_bulk_batches_fan_out_and_match_oracle(self, schema, aschema):
        backend = procshard(schema)
        backend.attach_access_schema(aschema)
        backend.insert_rows("R", ROWS)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = [backend.dictionary.encode(k) for k in range(7)]
        assert norm_flat(backend.fetch_flat_encoded(constraint, keys)) \
            == norm_flat(truth.fetch_flat_encoded(constraint, keys))
        assert norm_many(backend.fetch_many_encoded(constraint, keys)) \
            == norm_many(truth.fetch_many_encoded(constraint, keys))
        counters = backend.counters()
        assert counters["worker_reads_total"] == 2
        assert counters["rpc_requests_total"] > 0
        assert counters["rpc_bytes_shipped_total"] > 0
        assert counters["rpc_bytes_received_total"] > 0
        # Per-worker request counters cover the whole fleet.
        assert sum(counters[f"rpc_w{i}_requests_total"]
                   for i in range(backend.workers)) == \
            counters["rpc_requests_total"]
        backend.close()

    def test_worker_death_respawns_and_rebuilds(self, schema, aschema):
        backend = procshard(schema)
        backend.attach_access_schema(aschema)
        backend.insert_rows("R", ROWS)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = [backend.dictionary.encode(k) for k in range(7)]
        backend._worker_peers[0].process.kill()
        backend._worker_peers[0].process.join()
        assert norm_flat(backend.fetch_flat_encoded(constraint, keys)) \
            == norm_flat(truth.fetch_flat_encoded(constraint, keys))
        # Death mid-write: the retried shipment lands on the rebuilt
        # worker without double-applying.
        backend._worker_peers[1].process.kill()
        backend._worker_peers[1].process.join()
        extra = [(5, 7777, 0)]
        backend.insert_rows("R", extra)
        truth.insert_rows("R", extra)
        assert norm_flat(backend.fetch_flat_encoded(constraint, keys)) \
            == norm_flat(truth.fetch_flat_encoded(constraint, keys))
        assert backend.counters()["worker_respawns_total"] == 2
        assert backend.gauges()["workers_alive"] == 2
        backend.close()

    def test_gauges_and_histograms_shape(self, schema, aschema):
        backend = procshard(schema)
        backend.attach_access_schema(aschema)
        gauges = backend.gauges()
        assert gauges["workers_alive"] == 2
        assert gauges["replicas_alive"] == 0
        assert gauges["dictionary_bytes"] > 0
        names = [h.name for h in backend.histograms()]
        assert names == ["repro_storage_rpc_roundtrip_seconds",
                         "repro_storage_rpc_roundtrip_seconds_w0",
                         "repro_storage_rpc_roundtrip_seconds_w1"]
        backend.close()

    def test_storage_collector_adopts_rpc_instruments(self, schema,
                                                      aschema):
        from repro.obs import MetricsRegistry, attach_storage_collector
        backend = procshard(schema)
        backend.attach_access_schema(aschema)
        backend.insert_rows("R", ROWS)
        registry = MetricsRegistry()
        attach_storage_collector(registry, backend)
        keys = [backend.dictionary.encode(k) for k in range(7)]
        backend.fetch_flat_encoded(aschema.constraints[0], keys)
        flat = registry.as_flat_dict()
        assert flat["repro_storage_rpc_requests_total"] > 0
        assert flat["repro_storage_dictionary_bytes"] > 0
        assert flat["repro_storage_workers_alive"] == 2
        assert flat["repro_storage_rpc_roundtrip_seconds_count"] > 0
        backend.close()

    def test_snapshot_requires_durable_store(self, schema, aschema):
        backend = procshard(schema)
        with pytest.raises(StorageError, match="durable"):
            backend.snapshot()
        backend.close()


class TestReplicatedBackend:
    """Writer + live replica processes: staleness, catch-up, and the
    generation-epoch contract under concurrent writes."""

    def _replicated(self, schema, aschema, tmp):
        backend = ProcessShardedBackend(
            schema, workers=1, replicas=1, data_dir=tmp.name,
            fanout_threshold=0)
        backend._test_tmpdir = tmp  # pin the directory to the backend
        backend.attach_access_schema(aschema)
        return backend

    def test_replica_reads_identical_to_writer_across_writes(
            self, schema, aschema):
        tmp = tempfile.TemporaryDirectory(prefix="repro-procshard-")
        backend = self._replicated(schema, aschema, tmp)
        truth = MemoryBackend(schema)
        truth.attach_access_schema(aschema)
        constraint = aschema.constraints[0]
        for round_no in range(4):
            rows = [(i % 7, i + round_no * 1000, round_no)
                    for i in range(40)]
            backend.insert_rows("R", rows)
            truth.insert_rows("R", rows)
            keys = [backend.dictionary.encode(k) for k in range(7)]
            want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
            # Cycle through every round-robin slot (writer + replica):
            # all of them must answer with the post-write state.
            for _ in range(backend.replicas + 1):
                assert norm_flat(backend.fetch_flat_encoded(
                    constraint, keys)) == want
        counters = backend.counters()
        assert counters["replica_reads_total"] > 0
        assert counters["replica_catchups_total"] > 0
        assert counters["replica_wal_bytes_shipped_total"] > 0
        assert backend.gauges()["replicas_alive"] == 1
        backend.close()

    def test_writer_compaction_forces_replica_rebootstrap(
            self, schema, aschema):
        tmp = tempfile.TemporaryDirectory(prefix="repro-procshard-")
        backend = self._replicated(schema, aschema, tmp)
        backend.insert_rows("R", ROWS)
        constraint = aschema.constraints[0]
        keys = [backend.dictionary.encode(k) for k in range(7)]
        for _ in range(2):  # reach the replica slot at least once
            backend.fetch_flat_encoded(constraint, keys)
        boots_before = backend.counters()["replica_bootstraps_total"]
        backend.snapshot()  # truncates the WAL: shipped offsets die
        backend.insert_rows("R", [(3, 888888, 1)])
        truth = MemoryBackend(schema)
        truth.attach_access_schema(aschema)
        truth.insert_rows("R", ROWS + [(3, 888888, 1)])
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        for _ in range(backend.replicas + 1):
            assert norm_flat(backend.fetch_flat_encoded(
                constraint, keys)) == want
        assert backend.counters()["replica_bootstraps_total"] > \
            boots_before
        backend.close()

    def test_generation_epoch_under_concurrent_inserts(self, schema,
                                                       aschema):
        """The acceptance contract: while a writer thread inserts,
        every replica-served read must reflect a generation at least as
        fresh as the one the reader observed before fetching — rows can
        only ever appear *early*, never late."""
        tmp = tempfile.TemporaryDirectory(prefix="repro-procshard-")
        backend = self._replicated(schema, aschema, tmp)
        constraint = aschema.constraints[0]
        backend.insert_rows("R", [(1, 0, 0)])
        failures: list[str] = []
        stop = threading.Event()

        def writer():
            for i in range(1, 120):
                backend.insert_rows("R", [(1, i, 0)])
            stop.set()

        def reader():
            key = [backend.dictionary.encode(1)]
            while not failures:
                observed = backend._generations["R"]
                _, length = backend.fetch_flat_encoded(constraint, key)
                # Generation g published exactly g rows for X=1 (one
                # insert per generation): staleness would show as
                # length < observed.
                if length < observed:
                    failures.append(
                        f"read at generation {observed} returned "
                        f"{length} rows")
                if stop.is_set():
                    break

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures[:3]
        assert backend.counters()["replica_reads_total"] > 0
        backend.close()
