"""Unit tests for cardinality statistics."""

from __future__ import annotations

import pytest

from repro import Database, Schema
from repro.storage import (distinct_count, is_key, max_group_cardinality,
                           selectivity_profile)


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ("A", "B", "C")})
    database = Database(schema)
    database.insert_many("R", [
        (1, "x", 10),
        (1, "y", 10),
        (2, "x", 20),
        (3, "z", 30),
    ])
    return database


class TestMaxGroupCardinality:
    def test_basic(self, db):
        assert max_group_cardinality(db, "R", ("A",), ("B",)) == 2
        assert max_group_cardinality(db, "R", ("B",), ("A",)) == 2
        assert max_group_cardinality(db, "R", ("C",), ("A",)) == 1

    def test_empty_x_counts_distinct(self, db):
        assert max_group_cardinality(db, "R", (), ("A",)) == 3
        assert max_group_cardinality(db, "R", (), ("A", "B")) == 4

    def test_empty_relation(self):
        schema = Schema.from_dict({"R": ("A",)})
        db = Database(schema)
        assert max_group_cardinality(db, "R", (), ("A",)) == 0

    def test_composite_lhs(self, db):
        assert max_group_cardinality(db, "R", ("A", "B"), ("C",)) == 1


class TestDistinctAndKeys:
    def test_distinct_count(self, db):
        assert distinct_count(db, "R", ("A",)) == 3
        assert distinct_count(db, "R", ("C",)) == 3

    def test_is_key(self, db):
        assert not is_key(db, "R", ("A",))
        assert is_key(db, "R", ("A", "B"))
        # C = 10 appears with two different B values, so C is not a key.
        assert not is_key(db, "R", ("C",))
        assert is_key(db, "R", ("B", "C"))

    def test_all_attributes_always_key(self, db):
        assert is_key(db, "R", ("A", "B", "C"))

    def test_selectivity_profile(self, db):
        profile = selectivity_profile(db, "R")
        assert profile == {"A": 3, "B": 3, "C": 3}
