"""Tests for CSV import/export and the CLI."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Database, LogCardinality, \
    PowerCardinality, Schema, SchemaError, StorageError
from repro.cli import main as cli_main
from repro.storage.io import (load_database, load_relation_csv,
                              save_database, save_relation_csv)


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("C",)})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 3),
        AccessConstraint("S", (), ("C",), LogCardinality(2.0)),
    ])
    database = Database(schema, access)
    database.insert_many("R", [(1, "x"), (2, "y"), (1, "z")])
    database.insert_many("S", [("c1",), ("c2",)])
    return database


class TestCSVRoundTrip:
    def test_relation_roundtrip(self, db, tmp_path):
        path = tmp_path / "r.csv"
        assert save_relation_csv(db, "R", path) == 3
        fresh = Database(db.schema)
        assert load_relation_csv(fresh, "R", path) == 3
        assert sorted(fresh.relation_tuples("R")) == \
            sorted(db.relation_tuples("R"))

    def test_header_mismatch_rejected(self, db, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("X,Y\n1,2\n")
        with pytest.raises(SchemaError, match="header"):
            load_relation_csv(Database(db.schema), "R", path)

    def test_unknown_relation_rejected(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("A,B\n1,2\n")
        with pytest.raises(SchemaError, match="unknown relation 'T'"):
            load_relation_csv(Database(db.schema), "T", path)

    def test_missing_csv_file_rejected(self, db, tmp_path):
        with pytest.raises(StorageError, match="missing CSV file"):
            load_relation_csv(Database(db.schema), "R",
                              tmp_path / "nope.csv")

    def test_empty_csv_file_rejected(self, db, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError, match="empty"):
            load_relation_csv(Database(db.schema), "R", path)

    def test_malformed_row_reports_line(self, db, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("A,B\n1,x\n1,2,3\n")
        with pytest.raises(StorageError, match="line 3"):
            load_relation_csv(Database(db.schema), "R", path)

    def test_blank_lines_are_skipped(self, db, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("A,B\n1,x\n\n2,y\n")
        fresh = Database(db.schema)
        assert load_relation_csv(fresh, "R", path) == 2

    def test_database_roundtrip(self, db, tmp_path):
        save_database(db, tmp_path / "dump")
        restored = load_database(tmp_path / "dump")
        assert restored.size() == db.size()
        assert restored.satisfies()
        # Constraints survived, including the non-constant one.
        kinds = {type(c.cardinality).__name__
                 for c in restored.access_schema}
        assert kinds == {"ConstantCardinality", "LogCardinality"}

    def test_load_onto_chosen_backend(self, db, tmp_path):
        from repro.storage.backend import ShardedBackend
        save_database(db, tmp_path / "dump")
        restored = load_database(
            tmp_path / "dump",
            backend_factory=lambda schema: ShardedBackend(schema, shards=4))
        assert restored.backend.describe() == "sharded(shards=4)"
        assert sorted(restored.relation_tuples("R")) == \
            sorted(db.relation_tuples("R"))
        constraint = restored.access_schema.constraints[0]
        assert sorted(restored.fetch(constraint, (1,))) == \
            [(1, "x"), (1, "z")]

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="no such database directory"):
            load_database(tmp_path / "absent")

    def test_missing_schema_json_rejected(self, tmp_path):
        (tmp_path / "d").mkdir()
        with pytest.raises(SchemaError, match="no schema.json"):
            load_database(tmp_path / "d")

    def test_invalid_schema_json_rejected(self, tmp_path):
        (tmp_path / "d").mkdir()
        (tmp_path / "d" / "schema.json").write_text("{oops")
        with pytest.raises(SchemaError, match="not valid JSON"):
            load_database(tmp_path / "d")

    def test_missing_relations_key_rejected(self, tmp_path):
        (tmp_path / "d").mkdir()
        (tmp_path / "d" / "schema.json").write_text('{"constraints": []}')
        with pytest.raises(SchemaError, match="relations"):
            load_database(tmp_path / "d")

    def test_malformed_constraint_rejected(self, tmp_path):
        (tmp_path / "d").mkdir()
        (tmp_path / "d" / "schema.json").write_text(
            '{"relations": {"R": ["A", "B"]}, "constraints": [{"x": []}]}')
        with pytest.raises(SchemaError, match="constraint #0"):
            load_database(tmp_path / "d")

    def test_missing_relation_csv_rejected(self, db, tmp_path):
        save_database(db, tmp_path / "d")
        (tmp_path / "d" / "S.csv").unlink()
        with pytest.raises(StorageError, match="missing CSV file.*'S'"):
            load_database(tmp_path / "d")

    def test_power_cardinality_roundtrip(self, tmp_path):
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",),
                             PowerCardinality(0.5, 2.0))])
        database = Database(schema, access)
        database.insert("R", (1, 2))
        save_database(database, tmp_path / "d")
        restored = load_database(tmp_path / "d")
        constraint = restored.access_schema.constraints[0]
        assert constraint.cardinality.exponent == 0.5

    def test_numeric_narrowing(self, db, tmp_path):
        save_database(db, tmp_path / "dump")
        restored = load_database(tmp_path / "dump")
        values = {row[0] for row in restored.relation_tuples("R")}
        assert values == {1, 2}  # ints, not "1"/"2".


class TestCLI:
    @pytest.fixture
    def dump(self, db, tmp_path):
        save_database(db, tmp_path / "dump")
        return str(tmp_path / "dump")

    def test_analyze_covered(self, dump, capsys):
        code = cli_main(["analyze", "--db", dump,
                         "Q(y) :- R(x, y), x = 1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "BEP: yes" in out
        assert "fetch bound" in out

    def test_analyze_uncovered_gives_advice(self, dump, capsys):
        code = cli_main(["analyze", "--db", dump, "Q(x, y) :- R(x, y)"])
        out = capsys.readouterr().out
        assert code == 1
        assert "BEP: no" in out
        assert "specialization" in out

    def test_run_bounded(self, dump, capsys):
        code = cli_main(["run", "--db", dump, "Q(y) :- R(x, y), x = 1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "bounded plan" in out
        assert "2 answer(s)" in out

    def test_run_fallback(self, dump, capsys):
        code = cli_main(["run", "--db", dump, "Q(x, y) :- R(x, y)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "full scan" in out
        assert "3 answer(s)" in out

    def test_discover(self, dump, capsys):
        code = cli_main(["discover", "--db", dump, "--max-bound", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "R(A -> B," in out
