"""Chaos and resilience integration for the process-sharded backend:
deterministic fault injection, deadline propagation across the RPC
boundary, breaker-gated replica degradation, bounded close() under a
hung worker, and the interpreter-exit orphan sweep.

Every failure here is *injected deterministically* (fault plans count
hook ordinals; nothing fires on wall clock or randomness), and every
surviving read is checked bit-identical against a MemoryBackend
oracle — the acceptance bar is "failures cost latency and counters,
never answers"."""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time

import pytest

from repro import AccessConstraint, AccessSchema, Schema
from repro.deadline import Deadline, deadline_scope
from repro.errors import DeadlineExceeded, StorageError
from repro.faults import Fault, FaultPlan, clear_fault_plan, install_fault_plan
from repro.storage.backend import MemoryBackend, make_backend
from repro.storage.procshard import ProcessShardedBackend
from repro.storage.procshard.resilience import CLOSED, OPEN


@pytest.fixture(autouse=True)
def _clean_plan():
    clear_fault_plan()
    yield
    clear_fault_plan()


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ("A", "B", "C")})


@pytest.fixture
def aschema(schema):
    return AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B", "C"), 64),
    ])


ROWS = [(i % 7, i, i * 2) for i in range(60)]


def norm_flat(result):
    cols, length = result
    if not cols or not length:
        return length
    return sorted(zip(*[list(col) for col in cols]))


def procshard(schema, aschema, rows=ROWS, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("fanout_threshold", 0)
    backend = ProcessShardedBackend(schema, **kwargs)
    backend.attach_access_schema(aschema)
    if rows:
        backend.insert_rows("R", rows)
    return backend


def oracle(schema, aschema, rows=ROWS):
    backend = MemoryBackend(schema)
    backend.attach_access_schema(aschema)
    if rows:
        backend.insert_rows("R", rows)
    return backend


def keys_for(backend, count=7):
    return [backend.dictionary.encode(k) for k in range(count)]


class TestWorkerChaos:
    def test_kill_worker_mid_fetch_respawns_and_answers_identically(
            self, schema, aschema):
        backend = procshard(schema, aschema)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        assert norm_flat(
            backend.fetch_flat_encoded(constraint, keys)) == want
        sends_so_far = 0  # the plan installs after warm-up, counts fresh
        plan = FaultPlan([Fault("rpc_send", at=sends_so_far + 1,
                                kind="kill_peer")])
        install_fault_plan(plan)
        try:
            got = norm_flat(
                backend.fetch_flat_encoded(constraint, keys))
        finally:
            clear_fault_plan()
        assert got == want
        assert plan.fired == [("rpc_send", 1, "kill_peer")]
        counters = backend.counters()
        assert counters["worker_respawns_total"] >= 1
        assert counters["rpc_retries_total"] >= 1
        assert backend.gauges()["workers_alive"] == 2
        backend.close()

    def test_dropped_reply_counts_a_timeout_and_still_answers(
            self, schema, aschema):
        backend = procshard(schema, aschema)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        install_fault_plan(FaultPlan([
            Fault("rpc_recv", at=1, kind="drop_reply")]))
        try:
            got = norm_flat(
                backend.fetch_flat_encoded(constraint, keys))
        finally:
            clear_fault_plan()
        assert got == want
        assert backend.counters()["rpc_timeouts_total"] >= 1
        backend.close()

    def test_poisoned_worker_is_never_reused_misaligned(
            self, schema, aschema):
        """After an abandoned request leaves a reply in a pipe, the
        next request must not read that stale reply as its own — the
        poisoned peer is replaced, and answers stay correct."""
        backend = procshard(schema, aschema)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        # Wedge a real reply into worker 0's pipe that no caller will
        # ever consume — the exact state a timed-out RPC leaves behind.
        peer = backend._worker_peers[0]
        with peer.lock:
            backend._send(peer, ("ff", 0, [keys[0]], None, False), 8)
            peer.poisoned = True
        # Reads after the poisoning must not adopt the stale reply
        # (which is a *valid* fetch payload for different keys — the
        # nastiest aliasing case); the peer is replaced instead.
        assert norm_flat(
            backend.fetch_flat_encoded(constraint, keys)) == want
        assert norm_flat(
            backend.fetch_flat_encoded(constraint, keys)) == want
        assert not any(peer is not None and peer.poisoned
                       for peer in backend._worker_peers)
        assert backend.counters()["worker_respawns_total"] >= 1
        backend.close()


class TestDeadlinePropagation:
    def test_expired_deadline_aborts_rpc_with_typed_error(
            self, schema, aschema):
        backend = procshard(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        with deadline_scope(Deadline.after(-1.0)):
            with pytest.raises(DeadlineExceeded):
                backend.fetch_flat_encoded(constraint, keys)
        assert backend.counters()["rpc_deadline_aborts_total"] >= 1
        # The abort happened before anything was sent: no peer holds a
        # stale reply, so nothing needs replacing.
        assert not any(peer is not None and peer.poisoned
                       for peer in backend._worker_peers)
        backend.close()

    def test_generous_deadline_does_not_disturb_answers(
            self, schema, aschema):
        backend = procshard(schema, aschema)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        with deadline_scope(Deadline.after(60.0)):
            assert norm_flat(
                backend.fetch_flat_encoded(constraint, keys)) == want
        assert backend.counters()["rpc_deadline_aborts_total"] == 0
        backend.close()

    def test_writes_ignore_the_ambient_deadline(self, schema, aschema):
        # Half-shipped writes would drift shards from the store; the
        # write path must complete even under an expired deadline.
        backend = procshard(schema, aschema, rows=None)
        with deadline_scope(Deadline.after(-1.0)):
            assert backend.insert_rows("R", ROWS) == len(ROWS)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        assert norm_flat(
            backend.fetch_flat_encoded(constraint, keys)) == norm_flat(
                truth.fetch_flat_encoded(constraint, keys))
        backend.close()


class TestConfigurableTimeouts:
    def test_rpc_timeout_is_a_constructor_knob(self, schema):
        backend = ProcessShardedBackend(schema, workers=1,
                                        rpc_timeout_s=17.5)
        assert backend.rpc_timeout_s == 17.5
        backend.close()

    def test_default_comes_from_the_class_attribute(self, schema):
        backend = ProcessShardedBackend(schema, workers=1)
        assert backend.rpc_timeout_s == ProcessShardedBackend.RPC_TIMEOUT_S
        backend.close()

    def test_non_positive_timeout_rejected(self, schema):
        with pytest.raises(StorageError, match="rpc_timeout_s"):
            ProcessShardedBackend(schema, workers=1, rpc_timeout_s=0)

    def test_make_backend_passes_the_timeout_through(self, schema):
        backend = make_backend("procshard", schema, workers=1,
                               rpc_timeout_s=3.25)
        assert backend.rpc_timeout_s == 3.25
        backend.close()

    def test_timeouts_total_counter_exists_and_counts(
            self, schema, aschema):
        backend = procshard(schema, aschema)
        assert backend.counters()["rpc_timeouts_total"] == 0
        install_fault_plan(FaultPlan([
            Fault("rpc_recv", at=1, kind="drop_reply")]))
        try:
            backend.fetch_flat_encoded(aschema.constraints[0],
                                       keys_for(backend))
        finally:
            clear_fault_plan()
        assert backend.counters()["rpc_timeouts_total"] == 1
        backend.close()


class TestReplicaResilience:
    def _replicated(self, schema, aschema, tmp, **kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("replicas", 1)
        kwargs.setdefault("fanout_threshold", 0)
        backend = ProcessShardedBackend(schema, data_dir=tmp.name,
                                        **kwargs)
        backend._test_tmpdir = tmp
        backend.attach_access_schema(aschema)
        return backend

    def test_flapping_replica_opens_breaker_and_degrades_to_writer(
            self, schema, aschema):
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        backend = self._replicated(schema, aschema, tmp,
                                   breaker_failure_threshold=2,
                                   breaker_reset_after_s=60.0)
        backend.insert_rows("R", ROWS)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        # Warm up through the replica slot once, then kill the replica
        # process outright so every replica attempt fails.
        for _ in range(2):
            assert norm_flat(backend.fetch_flat_encoded(
                constraint, keys)) == want
        peer = backend._replica_peers[0]
        peer.process.kill()
        peer.process.join(timeout=5.0)
        # Also break re-bootstrap deterministically: tear the WAL ship.
        # (Not strictly needed — a killed peer already fails — but it
        # exercises the torn-tail path under repeated catch-up.)
        for _ in range(8):
            assert norm_flat(backend.fetch_flat_encoded(
                constraint, keys)) == want
        counters = backend.counters()
        # A dead replica re-bootstraps (catch-up path) — the reads
        # keep succeeding either way; what must NOT happen is a wrong
        # answer or an exception above.
        assert counters["replica_reads_total"] >= 1
        backend.close()

    def test_unbootstrappable_replica_trips_breaker_to_writer_local(
            self, schema, aschema, monkeypatch):
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        backend = self._replicated(schema, aschema, tmp,
                                   breaker_failure_threshold=2,
                                   breaker_reset_after_s=60.0)
        backend.insert_rows("R", ROWS)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        # Make every replica recovery fail: kill the peer and block
        # both catch-up and re-bootstrap.
        peer = backend._replica_peers[0]
        peer.process.kill()
        peer.process.join(timeout=5.0)
        monkeypatch.setattr(backend, "_bootstrap_replica",
                            lambda i: False)
        monkeypatch.setattr(backend, "_catch_up_replica",
                            lambda i: False)
        for _ in range(12):
            assert norm_flat(backend.fetch_flat_encoded(
                constraint, keys)) == want
        assert backend._breakers[0].state == OPEN
        counters = backend.counters()
        assert counters["replica_breaker_opens_total"] >= 1
        assert counters["replica_breaker_skips_total"] >= 1
        assert backend.gauges()["replica_breaker_state_r0"] == OPEN
        backend.close()

    def test_health_check_probes_half_open_breaker_back_closed(
            self, schema, aschema):
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        backend = self._replicated(schema, aschema, tmp,
                                   breaker_failure_threshold=1,
                                   breaker_reset_after_s=0.05)
        backend.insert_rows("R", ROWS)
        peer = backend._replica_peers[0]
        peer.process.kill()
        peer.process.join(timeout=5.0)
        backend._breakers[0].record_failure()  # open (threshold 1)
        assert backend._breakers[0].state == OPEN
        time.sleep(0.1)  # quiet period elapses -> half-open
        report = backend.health_check()
        assert report["replicas_probed"] == 1
        assert report["replicas_reclosed"] == 1  # re-bootstrapped + pinged
        assert backend._breakers[0].state == CLOSED
        assert backend.gauges()["replicas_alive"] == 1
        backend.close()

    def test_replica_churn_mid_write_storm_stays_bit_identical(
            self, schema, aschema):
        """The satellite acceptance test: kill and restart the replica
        while writes stream in; every read must match the MemoryBackend
        oracle bit for bit, and the fleet must end healthy."""
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        backend = self._replicated(schema, aschema, tmp,
                                   breaker_failure_threshold=2,
                                   breaker_reset_after_s=0.05)
        truth = oracle(schema, aschema, rows=None)
        constraint = aschema.constraints[0]
        for round_no in range(6):
            rows = [(i % 7, i + round_no * 1000, round_no)
                    for i in range(30)]
            backend.insert_rows("R", rows)
            truth.insert_rows("R", rows)
            if round_no == 2:  # churn: SIGKILL the replica mid-storm
                peer = backend._replica_peers[0]
                if peer is not None:
                    peer.process.kill()
                    peer.process.join(timeout=5.0)
            keys = keys_for(backend)
            want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
            for _ in range(backend.replicas + 1):  # all RR slots
                assert norm_flat(backend.fetch_flat_encoded(
                    constraint, keys)) == want
        # Give the breaker's quiet period a chance, then let the
        # housekeeping probe restore the fleet.
        time.sleep(0.1)
        backend.health_check()
        assert backend.gauges()["replicas_alive"] == 1
        assert backend._breakers[0].state == CLOSED
        assert backend.counters()["replica_reads_total"] >= 1
        backend.close()

    def test_torn_wal_ship_reships_cleanly(self, schema, aschema):
        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        backend = self._replicated(schema, aschema, tmp)
        backend.insert_rows("R", ROWS)
        truth = oracle(schema, aschema)
        constraint = aschema.constraints[0]
        keys = keys_for(backend)
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        for _ in range(2):  # replica bootstraps on its first slot
            assert norm_flat(backend.fetch_flat_encoded(
                constraint, keys)) == want
        # New rows make the replica stale; the catch-up chunk ships
        # torn 7 bytes short, so the replica consumes only whole
        # frames and the remainder re-ships on the next catch-up.
        extra = [(3, 777000 + i, 9) for i in range(5)]
        backend.insert_rows("R", extra)
        truth.insert_rows("R", extra)
        want = norm_flat(truth.fetch_flat_encoded(constraint, keys))
        plan = FaultPlan([Fault("wal_ship", at=1, kind="torn_tail",
                                arg=7)])
        install_fault_plan(plan)
        try:
            for _ in range(4):
                assert norm_flat(backend.fetch_flat_encoded(
                    constraint, keys)) == want
        finally:
            clear_fault_plan()
        assert plan.fired == [("wal_ship", 1, "torn_tail")]
        backend.close()


class TestBoundedClose:
    def test_close_with_hung_worker_returns_within_budget(
            self, schema, aschema):
        backend = procshard(schema, aschema, close_timeout_s=1.0)
        # Wedge worker 0 in a long request; its reply will never be
        # consumed, so the polite stop handshake cannot work.
        peer = backend._worker_peers[0]
        peer.conn.send(("sleep", 30.0))
        time.sleep(0.1)  # let the worker start sleeping
        processes = [p.process for p in backend._worker_peers]
        started = time.perf_counter()
        backend.close()
        elapsed = time.perf_counter() - started
        assert elapsed < 8.0, f"close() took {elapsed:.1f}s"
        assert backend.counters()["close_escalations_total"] >= 1
        for process in processes:
            process.join(timeout=2.0)
            assert not process.is_alive()

    def test_close_is_idempotent(self, schema, aschema):
        backend = procshard(schema, aschema)
        backend.close()
        backend.close()  # second close must be a quiet no-op


_ORPHAN_SCRIPT = """
import sys
from repro import AccessConstraint, AccessSchema, Schema
from repro.storage.procshard import ProcessShardedBackend

schema = Schema.from_dict({"R": ("A", "B")})
aschema = AccessSchema(schema, [AccessConstraint("R", ("A",), ("B",), 8)])
backend = ProcessShardedBackend(schema, workers=2)
backend.attach_access_schema(aschema)  # spawns the worker fleet
pids = [peer.process.pid for peer in backend._worker_peers]
print(" ".join(str(pid) for pid in pids))
sys.stdout.flush()
# Exit WITHOUT close(): the atexit sweep must reap the children.
"""


class TestOrphanSweep:
    def test_interpreter_exit_without_close_leaves_no_orphans(self):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.run(
            [sys.executable, "-c", _ORPHAN_SCRIPT], env=env,
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        pids = [int(token) for token in proc.stdout.split()]
        assert len(pids) == 2
        deadline = time.monotonic() + 10.0
        remaining = set(pids)
        while remaining and time.monotonic() < deadline:
            for pid in list(remaining):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    remaining.discard(pid)
                except PermissionError:
                    pass  # exists but not ours: count as alive
            if remaining:
                time.sleep(0.1)
        assert not remaining, f"orphaned worker pids: {sorted(remaining)}"
