"""Unit tests for the in-memory database and its indexes."""

from __future__ import annotations

import pytest

from repro import (AccessConstraint, AccessSchema, ConstraintViolation,
                   Database, ExecutionError, LogCardinality, Schema,
                   SchemaError)
from repro.storage.indexes import AccessIndex


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ("A", "B"), "S": ("C",)})


@pytest.fixture
def aschema(schema):
    return AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 2),
        AccessConstraint("S", (), ("C",), 3),
    ])


class TestDatabaseBasics:
    def test_insert_and_size(self, schema):
        db = Database(schema)
        db.insert("R", (1, "x"))
        db.insert("R", (1, "x"))  # Set semantics: duplicate ignored.
        db.insert("S", ("c",))
        assert db.size() == 2
        assert db.relation_size("R") == 1

    def test_arity_check(self, schema):
        db = Database(schema)
        with pytest.raises(SchemaError, match="arity"):
            db.insert("R", (1,))

    def test_unknown_relation(self, schema):
        db = Database(schema)
        with pytest.raises(SchemaError):
            db.insert("T", (1,))

    def test_contains(self, schema):
        db = Database(schema)
        db.insert("R", (1, 2))
        assert ("R", (1, 2)) in db
        assert ("R", (9, 9)) not in db

    def test_active_domain(self, schema):
        db = Database(schema)
        db.insert("R", (1, "x"))
        assert db.active_domain() == {1, "x"}
        assert db.active_domain(extra=["q"]) == {1, "x", "q"}

    def test_active_domain_memo_tracks_write_epoch(self, schema):
        db = Database(schema)
        db.insert("R", (1, "x"))
        first = db.active_domain()
        # Mutating the returned set must not corrupt the memo, and a
        # same-epoch call must not rescan (observable via the memo).
        first.add("junk")
        assert db.active_domain() == {1, "x"}
        assert db._adom_cache[0] == db.write_epoch()
        db.insert("R", (2, "y"))
        assert db.active_domain() == {1, "x", 2, "y"}
        db.delete("R", (1, "x"))
        assert db.active_domain() == {2, "y"}

    def test_delete_and_delete_many(self, schema):
        db = Database(schema)
        db.insert_many("R", [(1, "x"), (2, "y"), (3, "z")])
        assert db.delete("R", (1, "x"))
        assert not db.delete("R", (1, "x"))
        assert db.delete_many("R", [(2, "y"), (3, "z"), (9, "q")]) == 2
        assert db.size() == 0

    def test_clear(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert("R", (1, 2))
        db.clear()
        assert db.size() == 0
        assert db.fetch(aschema.constraints[0], (1,)) == []


class TestAccessSchemaValidation:
    def test_satisfies_within_bound(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert_many("R", [(1, "a"), (1, "b"), (2, "a")])
        assert db.satisfies()

    def test_violation_detected(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert_many("R", [(1, "a"), (1, "b"), (1, "c")])
        assert not db.satisfies()
        with pytest.raises(ConstraintViolation) as excinfo:
            db.check()
        assert excinfo.value.count == 3

    def test_empty_x_constraint(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert_many("S", [("a",), ("b",), ("c",)])
        assert db.satisfies()
        db.insert("S", ("d",))
        assert not db.satisfies()

    def test_check_against_unattached_schema(self, schema):
        db = Database(schema)
        db.insert_many("R", [(1, "a"), (1, "b")])
        strict = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        assert not db.satisfies(strict)

    def test_nonconstant_bound_uses_db_size(self, schema):
        db = Database(schema)
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), LogCardinality())])
        db.attach_access_schema(aschema)
        # 8 tuples => bound ceil(log2(8)) = 3; each key has <= 3 B-values.
        db.insert_many("R", [(1, i) for i in range(3)])
        db.insert_many("R", [(9, 100 + i) for i in range(3)])
        db.insert_many("R", [(7, 0), (8, 0)])
        assert db.satisfies()
        # Pile 8 values under one key: bound grows only to ceil(log2(16)),
        # so the constraint now fails.
        db.insert_many("R", [(1, 50 + i) for i in range(8)])
        assert not db.satisfies()


class TestFetch:
    def test_fetch_returns_xy_projections(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert_many("R", [(1, "a"), (1, "b"), (2, "c")])
        rows = db.fetch(aschema.constraints[0], (1,))
        assert sorted(rows) == [(1, "a"), (1, "b")]

    def test_fetch_missing_key(self, schema, aschema):
        db = Database(schema, aschema)
        assert db.fetch(aschema.constraints[0], (77,)) == []

    def test_fetch_empty_x(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert_many("S", [("a",), ("b",)])
        rows = db.fetch(aschema.constraints[1], ())
        assert sorted(rows) == [("a",), ("b",)]

    def test_fetch_without_index_fails(self, schema):
        db = Database(schema)
        constraint = AccessConstraint("R", ("A",), ("B",), 2)
        with pytest.raises(ExecutionError, match="no index"):
            db.fetch(constraint, (1,))

    def test_structural_index_matching(self, schema, aschema):
        """A structurally equal (but distinct) constraint finds the index."""
        db = Database(schema, aschema)
        db.insert("R", (1, "a"))
        clone = AccessConstraint("R", ("A",), ("B",), 2)
        assert db.fetch(clone, (1,)) == [(1, "a")]

    def test_index_updates_on_insert_after_attach(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert("R", (5, "z"))
        assert db.fetch(aschema.constraints[0], (5,)) == [(5, "z")]


class TestWriteGenerations:
    def test_insert_bumps_generation_once_per_effective_write(
            self, schema, aschema):
        db = Database(schema, aschema)
        before = db.generation("R")
        db.insert("R", (1, "a"))
        assert db.generation("R") == before + 1
        db.insert("R", (1, "a"))  # duplicate: not an effective write
        assert db.generation("R") == before + 1

    def test_insert_bumps_generation_after_index_updates(
            self, schema, aschema):
        """A reader observing the post-write epoch must also see the new
        row in every index; otherwise a fetch cache could pin pre-write
        rows under the new epoch forever."""
        db = Database(schema, aschema)
        index = db._indexes_for("R")[0]
        observed = []
        original_add = index.add

        def recording_add(row, coded_row=None):
            observed.append(db.generation("R"))
            original_add(row, coded_row)

        index.add = recording_add
        before = db.generation("R")
        db.insert("R", (1, "a"))
        assert observed == [before]
        assert db.generation("R") == before + 1

    def test_clear_bumps_generations_after_emptying_indexes(
            self, schema, aschema):
        db = Database(schema, aschema)
        db.insert("R", (1, "a"))
        before = db.generation("R")
        index = db._indexes_for("R")[0]
        observed = []
        original_remove_all = index.remove_all

        def recording_remove_all():
            observed.append(db.generation("R"))
            original_remove_all()

        index.remove_all = recording_remove_all
        db.clear()
        assert observed == [before]
        assert db.generation("R") == before + 1


class TestAccessIndex:
    def test_distinct_y_counting(self, schema):
        constraint = AccessConstraint("R", ("A",), ("B",), 2)
        index = AccessIndex(constraint, schema.relation("R"))
        index.add((1, "a"))
        index.add((1, "a"))
        index.add((1, "b"))
        assert index.group_size((1,)) == 2
        assert index.max_group_size() == 2
        assert len(index) == 1

    def test_validate_raises(self, schema):
        constraint = AccessConstraint("R", ("A",), ("B",), 1)
        index = AccessIndex(constraint, schema.relation("R"))
        index.add((1, "a"))
        index.add((1, "b"))
        with pytest.raises(ConstraintViolation):
            index.validate(db_size=2)
