"""The durable engine: WAL recovery, kill-point truncation, snapshots,
durable generations, and service restart round-trips.

Every recovered state is compared against a :class:`MemoryBackend`
oracle that applied the same effective writes — as *sets*, never
ordered (sharded/disk iteration order carries no meaning).
"""

from __future__ import annotations

import json
import shutil

import pytest

from repro import (AccessConstraint, AccessSchema, Database, Schema,
                   StorageError)
from repro.core import is_boundedly_evaluable
from repro.query import parse_query
from repro.service import (BoundedQueryService, CachingExecutor, FetchCache)
from repro.storage.disk import DiskBackend, disk_backend_factory, scan_frames
from repro.workload.accidents import AccidentScale, simple_accidents


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ("A", "B", "C"), "S": ("D",)})


@pytest.fixture
def aschema(schema):
    return AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B", "C"), 8),
        AccessConstraint("S", (), ("D",), 16),
    ])


def open_db(schema, aschema, data_dir) -> Database:
    return Database(schema, aschema, backend=DiskBackend(schema, data_dir))


def state_of(backend, schema):
    return {name: set(backend.scan(name))
            for name in schema.relation_names()}


class TestReopenRecovery:
    def test_wal_only_round_trip(self, schema, aschema, tmp_path):
        db = open_db(schema, aschema, tmp_path)
        db.insert_many("R", [(i % 4, f"b{i}", i) for i in range(20)])
        db.insert_many("S", [("d1",), ("d2",)])
        db.delete_many("R", [(0, "b0", 0), (1, "b1", 1)])
        expected = state_of(db.backend, schema)
        generations = {name: db.generation(name)
                       for name in schema.relation_names()}
        db.backend.close()

        reopened = open_db(schema, aschema, tmp_path)
        assert state_of(reopened.backend, schema) == expected
        # Generations are durable and monotonic across the restart.
        for name, generation in generations.items():
            assert reopened.generation(name) == generation
        # The rebuilt indexes answer bounded fetches.
        constraint = aschema.constraints[0]
        assert set(reopened.fetch(constraint, (2,))) == \
            {row for row in expected["R"] if row[0] == 2}
        reopened.backend.close()

    def test_snapshot_plus_wal_tail(self, schema, aschema, tmp_path):
        db = open_db(schema, aschema, tmp_path)
        db.insert_many("R", [(i, f"pre{i}", i) for i in range(10)])
        db.backend.snapshot()
        db.insert_many("R", [(i, f"post{i}", i) for i in range(10, 15)])
        db.delete("R", (0, "pre0", 0))
        expected = state_of(db.backend, schema)
        db.backend.close()

        reopened = open_db(schema, aschema, tmp_path)
        assert state_of(reopened.backend, schema) == expected
        reopened.backend.close()

    def test_clear_is_durable(self, schema, aschema, tmp_path):
        db = open_db(schema, aschema, tmp_path)
        db.insert_many("R", [(1, "a", 1), (2, "b", 2)])
        generation = db.generation("R")
        db.clear()
        db.insert("S", ("kept",))
        db.backend.close()

        reopened = open_db(schema, aschema, tmp_path)
        assert state_of(reopened.backend, schema) == \
            {"R": set(), "S": {("kept",)}}
        assert reopened.generation("R") == generation + 1
        reopened.backend.close()

    def test_replaying_already_snapshotted_records_is_noop(
            self, schema, aschema, tmp_path):
        """A crash between publishing a snapshot and truncating the WAL
        re-applies snapshotted records on reopen — must converge."""
        db = open_db(schema, aschema, tmp_path)
        db.insert_many("R", [(1, "a", 1), (2, "b", 2)])
        pre_snapshot_wal = (tmp_path / "wal.log").read_bytes()
        db.backend.snapshot()
        expected = state_of(db.backend, schema)
        generations = {name: db.generation(name)
                       for name in schema.relation_names()}
        db.backend.close()
        # Simulate the un-truncated WAL the crash would leave behind.
        (tmp_path / "wal.log").write_bytes(pre_snapshot_wal)

        reopened = open_db(schema, aschema, tmp_path)
        assert state_of(reopened.backend, schema) == expected
        for name, generation in generations.items():
            assert reopened.generation(name) == generation
        reopened.backend.close()

    def test_orphaned_snapshot_dir_from_crash_is_replaced(
            self, schema, aschema, tmp_path):
        """A crash after the snapshot rename but before CURRENT was
        repointed leaves an unpublished snap dir; the next snapshot
        must replace it, not fail."""
        db = open_db(schema, aschema, tmp_path)
        db.insert("R", (1, "a", 1))
        orphan = tmp_path / "snap-000001"
        orphan.mkdir()
        (orphan / "garbage.seg").write_text("torn\n")
        snap = db.backend.snapshot()
        assert snap == orphan  # same id, rebuilt from live state
        assert not (orphan / "garbage.seg").exists()
        db.backend.close()

        reopened = open_db(schema, aschema, tmp_path)
        assert state_of(reopened.backend, schema)["R"] == {(1, "a", 1)}
        reopened.backend.close()


class TestKillPoints:
    """Truncate the WAL at *every* byte offset: the backend must open
    cleanly, replay exactly the complete records, discard the torn
    tail, and match a MemoryBackend oracle."""

    def _write_ops(self, schema, aschema, data_dir):
        """Three effective write batches; returns the expected row-set
        state after each prefix of batches (index 0 = empty)."""
        db = open_db(schema, aschema, data_dir)
        states = [state_of(db.backend, schema)]
        db.insert_many("R", [(1, "a", 1), (2, "b", 2)])
        states.append(state_of(db.backend, schema))
        db.insert_many("S", [("d1",)])
        states.append(state_of(db.backend, schema))
        db.delete("R", (1, "a", 1))
        states.append(state_of(db.backend, schema))
        db.backend.close()
        return states

    def test_every_truncation_point_recovers_a_record_prefix(
            self, schema, aschema, tmp_path):
        source = tmp_path / "source"
        states = self._write_ops(schema, aschema, source)
        wal_bytes = (source / "wal.log").read_bytes()
        record_ends = [i + 1 for i, byte in enumerate(wal_bytes)
                       if byte == ord("\n")]
        assert len(record_ends) == len(states) - 1

        for cut in range(len(wal_bytes) + 1):
            work = tmp_path / f"cut-{cut}"
            shutil.copytree(source, work)
            (work / "wal.log").write_bytes(wal_bytes[:cut])
            complete = sum(1 for end in record_ends if end <= cut)

            reopened = open_db(schema, aschema, work)
            assert state_of(reopened.backend, schema) == states[complete], \
                f"truncation at byte {cut}"
            # The torn tail is physically discarded: the WAL now ends
            # at the last intact record.
            expected_length = record_ends[complete - 1] if complete else 0
            assert (work / "wal.log").stat().st_size == expected_length
            # And the log accepts new records cleanly after recovery.
            reopened.insert("R", (7, "fresh", cut))
            reopened.backend.close()

            fresh = open_db(schema, aschema, work)
            assert (7, "fresh", cut) in set(fresh.relation_tuples("R"))
            fresh.backend.close()
            shutil.rmtree(work)

    def test_corrupt_byte_discards_record_and_everything_after(
            self, schema, aschema, tmp_path):
        source = tmp_path / "source"
        states = self._write_ops(schema, aschema, source)
        wal = source / "wal.log"
        wal_bytes = bytearray(wal.read_bytes())
        record_ends = [i + 1 for i, byte in enumerate(wal_bytes)
                       if byte == ord("\n")]
        # Flip one payload byte in the middle of the second record:
        # records two AND three must be discarded — nothing after a
        # damaged record can be trusted.
        middle = (record_ends[0] + record_ends[1]) // 2
        wal_bytes[middle] ^= 0xFF
        wal.write_bytes(bytes(wal_bytes))

        reopened = open_db(schema, aschema, source)
        assert state_of(reopened.backend, schema) == states[1]
        assert (source / "wal.log").stat().st_size == record_ends[0]
        reopened.backend.close()

    def test_scan_frames_reports_valid_prefix(self, tmp_path):
        path = tmp_path / "frames.log"
        backend = DiskBackend(Schema.from_dict({"R": ("A",)}), tmp_path)
        backend.insert_rows("R", [(1,), (2,)])
        backend.close()
        records, valid = scan_frames(tmp_path / "wal.log")
        assert records == [["i", "R", 1, [[1], [2]]]]
        assert valid == (tmp_path / "wal.log").stat().st_size
        path.write_bytes(b"deadbeef not-json\n")
        assert scan_frames(path) == ([], 0)

    def test_scan_frame_bytes_matches_scan_frames(self, tmp_path):
        """The byte-range scanner (what replication ships) and the file
        scanner (what recovery reads) are the same function."""
        from repro.storage.disk import scan_frame_bytes
        backend = DiskBackend(Schema.from_dict({"R": ("A",)}), tmp_path)
        backend.insert_rows("R", [(1,), (2,)])
        backend.delete_rows("R", [(1,)])
        backend.close()
        data = (tmp_path / "wal.log").read_bytes()
        assert scan_frame_bytes(data) == scan_frames(tmp_path / "wal.log")
        # A torn suffix is invisible to both.
        assert scan_frame_bytes(data + b"08x torn") == \
            (scan_frame_bytes(data)[0], len(data))


def wal_bootstrap_payload(backend: DiskBackend, aschema, *,
                          wal: bytes = b"") -> dict:
    """A WAL-only replica bootstrap payload (no snapshot yet) — the
    shape ProcessShardedBackend._bootstrap_replica ships."""
    specs = []
    for cid, constraint in enumerate(aschema):
        index = backend._indexes[id(constraint)]
        specs.append((cid, constraint.relation_name,
                      list(index.x_positions), list(index.y_positions)))
    return {"segments": {},
            "generations": {name: 0
                            for name in backend.schema.relation_names()},
            "wal": wal, "values": backend.dictionary.values_from(0),
            "specs": specs, "snapshot_id": backend._snapshot_id}


class TestReplicationKillPoints:
    """The kill-point harness pointed at WAL *shipping*: a replica fed
    a chunk torn at any byte must land in exactly the state a crashed
    writer would recover to at the same truncation point, and converge
    once the remainder arrives."""

    def test_torn_ship_equals_torn_recovery_at_every_offset(
            self, schema, aschema, tmp_path):
        from repro.storage.procshard import ReplicaState
        source = tmp_path / "source"
        states = TestKillPoints()._write_ops(schema, aschema, source)
        wal_bytes = (source / "wal.log").read_bytes()
        record_ends = [i + 1 for i, byte in enumerate(wal_bytes)
                       if byte == ord("\n")]
        reference = DiskBackend(schema, source)
        reference.attach_access_schema(aschema)
        # A live coordinator's dictionary is append-only, so it still
        # holds codes for rows deleted before the ship; the recovered
        # reference dropped them — re-encode the full WAL history.
        for record in scan_frames(source / "wal.log")[0]:
            if record[0] in ("i", "d"):
                for row in record[3]:
                    reference.dictionary.encode_row(tuple(row))
        payload = wal_bootstrap_payload(reference, aschema)

        for cut in range(len(wal_bytes) + 1):
            complete = sum(1 for end in record_ends if end <= cut)
            replica = ReplicaState()
            replica.bootstrap(payload)
            first = replica.apply_wal(wal_bytes[:cut], [])
            # Consumed exactly the intact prefix — byte-identical to
            # what recovery would keep after a crash at this offset.
            assert first["consumed"] == \
                (record_ends[complete - 1] if complete else 0)
            assert {name: set(store)
                    for name, store in replica.stores.items()} == \
                states[complete], f"shipping torn at byte {cut}"
            # The re-shipped remainder completes the log.
            replica.apply_wal(wal_bytes[first["consumed"]:], [])
            assert {name: set(store)
                    for name, store in replica.stores.items()} == \
                states[-1]
        reference.close()

    def test_replica_restart_catches_up_from_snapshot_plus_tail(
            self, schema, aschema, tmp_path):
        """A replica that restarts (fresh state) after the writer
        compacted must rebuild from the published snapshot and the
        shipped tail — the exact recovery path a reopened DiskBackend
        takes."""
        from repro.storage.procshard import ReplicaState
        writer = DiskBackend(schema, tmp_path)
        writer.attach_access_schema(aschema)
        writer.insert_rows("R", [(i % 3, f"pre{i}", i) for i in range(9)])
        snap_dir = writer.snapshot()
        writer.insert_rows("R", [(7, "post", 1)])
        writer.delete_rows("R", [(0, "pre0", 0)])

        manifest = json.loads((snap_dir / "manifest.json").read_text())
        payload = wal_bootstrap_payload(
            writer, aschema, wal=(tmp_path / "wal.log").read_bytes())
        payload["segments"] = {
            name: (snap_dir / f"{name}.seg").read_bytes()
            for name in schema.relation_names()}
        payload["generations"] = manifest["generations"]

        restarted = ReplicaState()  # fresh process: nothing carried over
        result = restarted.bootstrap(payload)
        assert {name: set(store)
                for name, store in restarted.stores.items()} == \
            state_of(writer, schema)
        assert result["generations"] == writer._generations
        writer.close()

    def test_generations_monotone_across_replica_fleet(
            self, schema, aschema, tmp_path):
        """Replicas at different ship offsets order by generation: the
        further-shipped replica's generation map dominates, and no
        replica ever exceeds the writer."""
        from repro.storage.procshard import ReplicaState
        source = tmp_path / "source"
        TestKillPoints()._write_ops(schema, aschema, source)
        wal_bytes = (source / "wal.log").read_bytes()
        record_ends = [i + 1 for i, byte in enumerate(wal_bytes)
                       if byte == ord("\n")]
        reference = DiskBackend(schema, source)
        reference.attach_access_schema(aschema)
        for record in scan_frames(source / "wal.log")[0]:
            if record[0] in ("i", "d"):  # append-only writer dictionary
                for row in record[3]:
                    reference.dictionary.encode_row(tuple(row))
        payload = wal_bootstrap_payload(reference, aschema)

        fleet = []
        for end in [0, *record_ends]:
            replica = ReplicaState()
            replica.bootstrap(payload)
            replica.apply_wal(wal_bytes[:end], [])
            fleet.append(replica)
        for behind, ahead in zip(fleet, fleet[1:]):
            for name in schema.relation_names():
                assert behind.generations[name] <= ahead.generations[name]
        assert fleet[-1].generations == reference._generations
        reference.close()


class TestDurabilityContract:
    def test_non_durable_value_rejected_before_any_mutation(
            self, schema, aschema, tmp_path):
        db = open_db(schema, aschema, tmp_path)
        db.insert("R", (1, "ok", 1))
        with pytest.raises(StorageError, match="JSON scalars"):
            db.insert("R", (2, ("a", "tuple"), 2))
        # Neither the store, the WAL, nor the generation moved.
        assert state_of(db.backend, schema)["R"] == {(1, "ok", 1)}
        assert db.generation("R") == 1
        db.backend.close()
        reopened = open_db(schema, aschema, tmp_path)
        assert state_of(reopened.backend, schema)["R"] == {(1, "ok", 1)}
        reopened.backend.close()

    def test_one_live_backend_per_directory(self, schema, tmp_path):
        """A second opener would later truncate a WAL the first is
        still appending to — the directory lock refuses it up front."""
        first = DiskBackend(schema, tmp_path)
        with pytest.raises(StorageError, match="already open"):
            DiskBackend(schema, tmp_path)
        first.close()
        second = DiskBackend(schema, tmp_path)  # released on close
        second.close()

    def test_snapshot_on_closed_backend_refuses(self, schema, tmp_path):
        backend = DiskBackend(schema, tmp_path)
        backend.insert_rows("R", [(1, "a", 1)])
        backend.close()
        with pytest.raises(StorageError, match="closed backend"):
            backend.snapshot()
        # The successor's WAL is intact.
        reopened = DiskBackend(schema, tmp_path)
        assert set(reopened.scan("R")) == {(1, "a", 1)}
        reopened.close()

    def test_mismatched_schema_directory_is_actionable(self, schema,
                                                       tmp_path):
        backend = DiskBackend(schema, tmp_path)
        backend.insert_rows("R", [(1, "a", 1)])
        backend.snapshot()
        backend.close()
        other = Schema.from_dict({"Q": ("Z",)})
        with pytest.raises(StorageError, match="same schema"):
            DiskBackend(other, tmp_path)

    def test_damaged_manifest_is_actionable(self, schema, tmp_path):
        backend = DiskBackend(schema, tmp_path)
        backend.insert_rows("R", [(1, "a", 1)])
        name = backend.snapshot().name
        backend.close()
        manifest = tmp_path / name / "manifest.json"
        manifest.write_text(json.dumps({"format": 99}))
        with pytest.raises(StorageError, match="unsupported manifest"):
            DiskBackend(schema, tmp_path)
        manifest.unlink()
        with pytest.raises(StorageError, match="missing"):
            DiskBackend(schema, tmp_path)

    def test_oracle_equivalence_under_mixed_traffic(self, schema, aschema,
                                                    tmp_path):
        """Disk and memory backends fed identical effective writes agree
        on every relation and every bounded fetch, before and after a
        restart."""
        disk_db = open_db(schema, aschema, tmp_path)
        oracle = Database(schema, aschema)
        import random
        rng = random.Random(11)
        live: list[tuple] = []
        for step in range(120):
            if live and rng.random() < 0.3:
                victim = rng.choice(live)
                disk_db.delete("R", victim)
                oracle.delete("R", victim)
                live.remove(victim)
            else:
                row = (rng.randrange(6), f"b{rng.randrange(9)}", step)
                disk_db.insert("R", row)
                oracle.insert("R", row)
                live.append(row)
            if step == 60:
                disk_db.backend.snapshot()
        assert set(disk_db.relation_tuples("R")) == \
            set(oracle.relation_tuples("R"))
        disk_db.backend.close()

        reopened = open_db(schema, aschema, tmp_path)
        assert set(reopened.relation_tuples("R")) == \
            set(oracle.relation_tuples("R"))
        constraint = aschema.constraints[0]
        keys = [(a,) for a in range(6)]
        assert [set(rows) for rows in reopened.fetch_many(constraint, keys)] \
            == [set(rows) for rows in oracle.fetch_many(constraint, keys)]
        reopened.backend.close()


class TestServiceRestart:
    def _service_schema(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 64)])
        return schema, aschema

    def test_round_trips_identical_answers_with_cold_caches(self, tmp_path):
        schema, aschema = self._service_schema()
        db = open_db(schema, aschema, tmp_path)
        db.insert_many("R", [(1, i) for i in range(10)] + [(2, 99)])
        service = BoundedQueryService(db)
        query = "Q(y) :- R(x, y), x = 1"
        first = service.execute(query)
        warm = service.execute(query)
        assert warm.stats.tuples_fetched == 0  # served from the cache
        db.insert("R", (1, 10))
        before_restart = service.execute(query)
        assert before_restart.answers == first.answers | {(10,)}
        db.backend.close()

        restarted = open_db(schema, aschema, tmp_path)
        revived = BoundedQueryService(restarted)
        cold = revived.execute(query)
        assert cold.answers == before_restart.answers
        # The revived service's caches are genuinely cold: the first
        # request compiled a plan and fetched from storage, not from
        # any cache.
        assert not cold.plan_cached
        assert cold.stats.tuples_fetched > 0
        assert cold.stats.fetch_cache_hits == 0
        restarted.backend.close()

    def test_durable_generations_invalidate_a_surviving_cache(
            self, tmp_path):
        """Generations are monotonic across restarts, so even a fetch
        cache that outlives the process (simulated here by reusing the
        object) can never serve pre-restart rows for a post-restart
        write epoch."""
        schema, aschema = self._service_schema()
        db = open_db(schema, aschema, tmp_path)
        db.insert_many("R", [(1, 0), (1, 1)])
        plan = is_boundedly_evaluable(
            parse_query("Q(y) :- R(x, y), x = 1"), aschema).witness["plan"]
        cache = FetchCache(capacity=64)
        executor = CachingExecutor(db, cache)
        assert executor.execute(plan).answers == {(0,), (1,)}
        db.backend.close()

        restarted = open_db(schema, aschema, tmp_path)
        restarted.insert("R", (1, 2))  # post-restart write epoch
        answers = CachingExecutor(restarted, cache).execute(plan).answers
        assert answers == {(0,), (1,), (2,)}
        restarted.backend.close()


class TestWorkloadFactory:
    def test_accidents_build_straight_onto_disk_and_recover(self, tmp_path):
        scale = AccidentScale(days=3, max_accidents_per_day=4)
        disk_db = simple_accidents(
            scale, backend_factory=disk_backend_factory(tmp_path))
        oracle = simple_accidents(scale)
        assert disk_db.backend.describe().startswith("disk(")
        assert disk_db.summary() == oracle.summary()
        disk_db.backend.close()

        reopened = Database(oracle.schema, oracle.access_schema,
                            backend=DiskBackend(oracle.schema, tmp_path))
        for name in oracle.schema.relation_names():
            assert set(reopened.relation_tuples(name)) == \
                set(oracle.relation_tuples(name))
        reopened.backend.close()
