"""Circuit breaker and retry policy units, driven by a fake clock —
no sleeping, every transition asserted explicitly."""

from __future__ import annotations

import pytest

from repro.storage.procshard.resilience import (CLOSED, HALF_OPEN, OPEN,
                                                CircuitBreaker, RetryPolicy)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_after_s=5.0,
                          clock=clock)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self, breaker):
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # threshold not reached
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opens_total == 1

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak restarted, not resumed

    def test_half_open_after_quiet_period(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.9)
        assert breaker.state == OPEN and not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the single probe
        assert breaker.state_name == "half_open"

    def test_probe_success_recloses(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_probe_failure_reopens_and_restarts_quiet_period(
            self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # one failed probe is enough
        assert breaker.state == OPEN
        assert breaker.opens_total == 2
        clock.advance(4.9)
        assert breaker.state == OPEN  # the period restarted from the probe
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_threshold_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)


class TestRetryPolicy:
    def test_yields_attempts_minus_one_delays(self):
        assert len(list(RetryPolicy(attempts=4).delays())) == 3
        assert list(RetryPolicy(attempts=1).delays()) == []

    def test_delays_grow_exponentially_within_jitter(self):
        policy = RetryPolicy(attempts=4, base_delay_s=0.1,
                             max_delay_s=10.0, jitter=0.5, seed=7)
        delays = list(policy.delays())
        for i, delay in enumerate(delays):
            nominal = 0.1 * 2 ** i
            assert nominal * 0.5 <= delay <= nominal * 1.5

    def test_cap_applies_before_jitter_scale(self):
        policy = RetryPolicy(attempts=5, base_delay_s=1.0,
                             max_delay_s=1.0, jitter=0.25, seed=0)
        assert all(delay <= 1.25 for delay in policy.delays())

    def test_seeded_sequences_reproduce(self):
        first = list(RetryPolicy(attempts=5, seed=42).delays())
        second = list(RetryPolicy(attempts=5, seed=42).delays())
        other = list(RetryPolicy(attempts=5, seed=43).delays())
        assert first == second
        assert first != other

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
