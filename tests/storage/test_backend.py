"""The storage-engine boundary: backend conformance, deletion,
constraint resolution projections, and write/read races."""

from __future__ import annotations

import tempfile
import threading

import pytest

from repro import (AccessConstraint, AccessSchema, Database, ExecutionError,
                   Schema, StorageError)
from repro.core import is_boundedly_evaluable
from repro.engine import Executor
from repro.query import parse_query
from repro.service import CachingExecutor, FetchCache
from repro.storage.backend import (MemoryBackend, ShardedBackend,
                                   make_backend)
from repro.storage.disk import DiskBackend


def _disk_backend(schema):
    """A DiskBackend on a throwaway directory; the TemporaryDirectory
    is pinned to the backend so it is cleaned up when the backend is."""
    tmp = tempfile.TemporaryDirectory(prefix="repro-disk-")
    backend = DiskBackend(schema, tmp.name)
    backend._test_tmpdir = tmp
    return backend


def _procshard_backend(schema):
    """A one-worker process-sharded backend with RPC forced on (zero
    fan-out threshold), so every encoded fetch crosses a pipe."""
    from repro.storage.procshard import ProcessShardedBackend
    return ProcessShardedBackend(schema, workers=1, fanout_threshold=0)


BACKEND_FACTORIES = [
    pytest.param(lambda schema: MemoryBackend(schema), id="memory"),
    pytest.param(lambda schema: ShardedBackend(schema, shards=4),
                 id="sharded"),
    pytest.param(lambda schema: ShardedBackend(schema, shards=4, workers=2),
                 id="sharded-pool"),
    pytest.param(_disk_backend, id="disk"),
    pytest.param(_procshard_backend, id="procshard"),
]


@pytest.fixture
def schema():
    return Schema.from_dict({"R": ("A", "B", "C"), "S": ("D",)})


@pytest.fixture
def aschema(schema):
    return AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B", "C"), 8),
        AccessConstraint("S", (), ("D",), 16),
    ])


def make_db(factory, schema, aschema=None):
    return Database(schema, aschema, backend=factory(schema))


@pytest.mark.parametrize("factory", BACKEND_FACTORIES)
class TestBackendConformance:
    def test_insert_scan_size_contains(self, factory, schema, aschema):
        db = make_db(factory, schema, aschema)
        rows = [(i, f"b{i % 3}", i % 2) for i in range(20)]
        db.insert_many("R", rows)
        db.insert_many("R", rows)  # set semantics: second pass is a no-op
        assert db.relation_size("R") == 20
        assert sorted(db.relation_tuples("R")) == sorted(rows)
        assert ("R", rows[0]) in db
        assert ("R", (99, "nope", 0)) not in db

    def test_fetch_many_matches_per_value_fetch(self, factory, schema,
                                                aschema):
        db = make_db(factory, schema, aschema)
        db.insert_many("R", [(i % 5, f"b{i}", i) for i in range(30)])
        constraint = aschema.constraints[0]
        x_values = [(i,) for i in range(7)]  # includes missing keys
        batched = db.fetch_many(constraint, x_values)
        for x_value, rows in zip(x_values, batched):
            assert sorted(rows) == sorted(db.fetch(constraint, x_value))
        flat = db.fetch_flat(constraint, x_values)
        assert sorted(flat) == sorted(r for rows in batched for r in rows)

    def test_delete_updates_scan_fetch_and_generation(self, factory,
                                                      schema, aschema):
        db = make_db(factory, schema, aschema)
        db.insert_many("R", [(1, "a", 10), (1, "b", 11), (2, "a", 12)])
        constraint = aschema.constraints[0]
        generation = db.generation("R")
        assert db.delete("R", (1, "a", 10))
        assert db.generation("R") == generation + 1
        assert sorted(db.relation_tuples("R")) == [(1, "b", 11),
                                                   (2, "a", 12)]
        assert db.fetch(constraint, (1,)) == [(1, "b", 11)]
        # Deleting an absent row is not an effective write.
        assert not db.delete("R", (1, "a", 10))
        assert db.generation("R") == generation + 1

    def test_delete_keeps_shared_projection_alive(self, factory, schema):
        """X∪Y can be a strict subset of the attributes: a projection
        survives until its *last* witness row is deleted."""
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 8)])
        db = make_db(factory, schema, aschema)
        constraint = aschema.constraints[0]
        db.insert_many("R", [(1, "b", 10), (1, "b", 11)])
        db.delete("R", (1, "b", 10))
        assert db.fetch(constraint, (1,)) == [(1, "b")]
        db.delete("R", (1, "b", 11))
        assert db.fetch(constraint, (1,)) == []

    def test_clear_empties_rows_and_indexes(self, factory, schema, aschema):
        db = make_db(factory, schema, aschema)
        db.insert_many("R", [(1, "a", 10), (2, "b", 11)])
        generation = db.generation("R")
        db.clear()
        assert db.size() == 0
        assert db.fetch(aschema.constraints[0], (1,)) == []
        assert db.generation("R") == generation + 1

    def test_empty_x_constraint(self, factory, schema, aschema):
        db = make_db(factory, schema, aschema)
        db.insert_many("S", [("d1",), ("d2",)])
        rows = db.fetch(aschema.constraints[1], ())
        assert sorted(rows) == [("d1",), ("d2",)]

    def test_fetch_without_index_fails(self, factory, schema):
        db = make_db(factory, schema)
        constraint = AccessConstraint("R", ("A",), ("B",), 2)
        with pytest.raises(ExecutionError, match="no index"):
            db.fetch(constraint, (1,))

    def test_check_and_satisfies(self, factory, schema):
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        db = make_db(factory, schema, aschema)
        db.insert_many("R", [(1, f"b{i}", i) for i in range(2)])
        assert db.satisfies()
        db.insert("R", (1, "b9", 9))
        assert not db.satisfies()

    def test_check_narrower_constraint_counts_its_own_y(self, factory,
                                                       schema):
        """Validating a narrower constraint must count distinct values
        of *its* Y, not the wider attached index's — the wider counts
        would flag spurious violations."""
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B", "C"), 10)])
        db = make_db(factory, schema, aschema)
        # 4 distinct (B, C) pairs per A-value, but only 2 distinct Bs.
        db.insert_many("R", [(1, "b1", 10), (1, "b1", 11),
                             (1, "b2", 12), (1, "b2", 13)])
        narrow_ok = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 3)])
        assert db.satisfies(narrow_ok)
        narrow_tight = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        assert not db.satisfies(narrow_tight)


class TestConstraintResolutionProjection:
    """Regression for the structural-fallback bug: a structurally
    matched index with a *wider* Y-set used to return rows in the wider
    constraint's column order — callers got the wrong arity."""

    @pytest.mark.parametrize("factory", BACKEND_FACTORIES)
    def test_narrower_y_is_projected_and_deduplicated(self, factory,
                                                      schema):
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B", "C"), 8)])
        db = make_db(factory, schema, aschema)
        db.insert_many("R", [(1, "b", 10), (1, "b", 11), (1, "c", 12)])
        narrower = AccessConstraint("R", ("A",), ("B",), 8)
        rows = db.fetch(narrower, (1,))
        # Projected to X∪Y of the *requested* constraint, duplicates
        # from the dropped C column collapsed.
        assert sorted(rows) == [(1, "b"), (1, "c")]

    @pytest.mark.parametrize("factory", BACKEND_FACTORIES)
    def test_reordered_y_is_projected(self, factory, schema):
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B", "C"), 8)])
        db = make_db(factory, schema, aschema)
        db.insert("R", (1, "b", 10))
        reordered = AccessConstraint("R", ("A",), ("C", "B"), 8)
        assert db.fetch(reordered, (1,)) == [(1, 10, "b")]

    @pytest.mark.parametrize("factory", BACKEND_FACTORIES)
    def test_permuted_x_key_is_reordered(self, factory, schema):
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A", "B"), ("C",), 8)])
        db = make_db(factory, schema, aschema)
        db.insert("R", (1, "b", 10))
        permuted = AccessConstraint("R", ("B", "A"), ("C",), 8)
        # The X-value arrives in the *requested* order (B, A) and must
        # be permuted into the attached index's (A, B) key order.
        assert db.fetch(permuted, ("b", 1)) == [("b", 1, 10)]

    def test_bounded_plan_over_wider_index_is_insulated(self):
        """End to end: a plan whose constraint is re-created by the
        analysis gets correctly projected rows from a wider index."""
        schema = Schema.from_dict({"R": ("A", "B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B", "C"), 4)])
        db = Database(schema, aschema)
        db.insert_many("R", [(1, "x", 7), (1, "x", 8), (2, "y", 9)])
        decision = is_boundedly_evaluable(
            parse_query("Q(b) :- R(a, b, c), a = 1"), aschema)
        assert decision.is_yes
        result = Executor(db).execute(decision.witness["plan"])
        assert result.answers == {("x",)}


class TestShardedLayout:
    def test_rows_partition_across_shards(self, schema, aschema):
        backend = ShardedBackend(schema, shards=4)
        db = Database(schema, aschema, backend=backend)
        rows = [(i, f"b{i}", i) for i in range(40)]
        db.insert_many("R", rows)
        shard_sizes = [len(shard) for shard in backend._rows["R"]]
        assert sum(shard_sizes) == 40
        assert sum(1 for size in shard_sizes if size) > 1
        # Every index group lives in exactly one shard, keyed by X.
        seen = {}
        for index in backend.indexes_for("R"):
            for x_value in index.x_values():
                assert x_value not in seen, "X-key split across shards"
                seen[x_value] = True

    def test_close_shuts_down_lookup_pool(self, schema, aschema):
        # fanout_threshold=0 forces the pool path even for this small
        # batch; the default threshold is exercised separately below.
        backend = ShardedBackend(schema, shards=4, workers=2,
                                 fanout_threshold=0)
        db = Database(schema, aschema, backend=backend)
        db.insert_many("R", [(i, f"b{i}", i) for i in range(20)])
        constraint = aschema.constraints[0]
        db.fetch_many(constraint, [(i,) for i in range(20)])
        assert backend._pool is not None
        backend.close()
        backend.close()  # idempotent
        assert backend._pool is None
        # The backend keeps answering (a fresh pool spins up lazily).
        assert db.fetch(constraint, (1,)) == [(1, "b1", 1)]

    def test_invalid_parameters_rejected(self, schema):
        with pytest.raises(StorageError, match="shard count"):
            ShardedBackend(schema, shards=0)
        with pytest.raises(StorageError, match="worker count"):
            ShardedBackend(schema, workers=-1)

    def test_small_batches_skip_the_pool(self, schema, aschema):
        """Below ``fanout_threshold`` keys per touched shard, lookups
        run sequentially: no pool is ever created, so tiny batches pay
        zero submit/synchronization overhead."""
        backend = ShardedBackend(schema, shards=4, workers=2)
        db = Database(schema, aschema, backend=backend)
        db.insert_many("R", [(i, f"b{i}", i) for i in range(40)])
        constraint = aschema.constraints[0]
        small = [(i,) for i in range(8)]
        assert db.fetch_many(constraint, small) == \
            [[(i, f"b{i}", i)] for i in range(8)]
        db.fetch_flat(constraint, small)
        backend.fetch_flat_encoded(
            constraint, [backend.dictionary.encode(i) for i in range(8)])
        assert backend._pool is None

    def test_large_batches_use_the_pool(self, schema, aschema):
        backend = ShardedBackend(schema, shards=2, workers=2)
        db = Database(schema, aschema, backend=backend)
        count = backend.fanout_threshold * 2 + 8  # over both shards
        db.insert_many("R", [(i, f"b{i}", i) for i in range(count)])
        constraint = aschema.constraints[0]
        rows = db.fetch_many(constraint, [(i,) for i in range(count)])
        assert rows == [[(i, f"b{i}", i)] for i in range(count)]
        assert backend._pool is not None
        backend.close()

    def test_fanout_threshold_is_configurable(self, schema):
        assert ShardedBackend(schema, workers=2).fanout_threshold == \
            ShardedBackend.FANOUT_THRESHOLD
        assert ShardedBackend(
            schema, workers=2, fanout_threshold=7).fanout_threshold == 7
        # Negative thresholds clamp to "always fan out".
        assert ShardedBackend(
            schema, workers=2, fanout_threshold=-3).fanout_threshold == 0

    def test_make_backend_factory(self, schema, tmp_path):
        assert isinstance(make_backend("memory", schema), MemoryBackend)
        sharded = make_backend("sharded", schema, shards=3, workers=1)
        assert isinstance(sharded, ShardedBackend)
        assert sharded.shards == 3 and sharded.workers == 1
        disk = make_backend("disk", schema, data_dir=tmp_path / "d")
        assert isinstance(disk, DiskBackend)
        disk.close()
        with pytest.raises(StorageError, match="data directory"):
            make_backend("disk", schema)
        from repro.storage.procshard import ProcessShardedBackend
        procshard = make_backend("procshard", schema, workers=1)
        assert isinstance(procshard, ProcessShardedBackend)
        assert procshard.workers == 1 and procshard.replicas == 0
        procshard.close()
        with pytest.raises(StorageError, match="durable writer"):
            make_backend("procshard", schema, workers=1, replicas=1)
        with pytest.raises(StorageError, match="worker process"):
            ProcessShardedBackend(schema, workers=0)
        with pytest.raises(StorageError, match="unknown storage backend"):
            make_backend("paper-tape", schema)

    def test_with_backend_rehomes_rows_and_schema(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert_many("R", [(i, f"b{i}", i) for i in range(10)])
        clone = db.with_backend(ShardedBackend(schema, shards=4))
        assert sorted(clone.relation_tuples("R")) == \
            sorted(db.relation_tuples("R"))
        assert clone.access_schema is db.access_schema
        constraint = aschema.constraints[0]
        assert sorted(clone.fetch(constraint, (3,))) == \
            sorted(db.fetch(constraint, (3,)))
        assert clone.backend.describe().startswith("sharded")

    def test_resolution_memo_is_bounded(self, schema, aschema):
        backend = MemoryBackend(schema)
        backend._MAX_RESOLUTIONS = 8
        db = Database(schema, aschema, backend=backend)
        db.insert("R", (1, "a", 10))
        for _ in range(30):
            probe = AccessConstraint("R", ("A",), ("B", "C"), 8)
            assert db.fetch(probe, (1,)) == [(1, "a", 10)]
        assert len(backend._resolutions) <= 8

    def test_mixed_key_batch_is_normalized(self, schema, aschema):
        db = Database(schema, aschema)
        db.insert_many("R", [(1, "a", 10), (2, "b", 11)])
        constraint = aschema.constraints[0]
        # Tuple first, list later: the late non-tuple must not crash.
        rows = db.fetch_many(constraint, [(1,), [2]])
        assert rows == [[(1, "a", 10)], [(2, "b", 11)]]
        flat = db.fetch_flat(constraint, [(1,), [2]])
        assert sorted(flat) == [(1, "a", 10), (2, "b", 11)]

    def test_mismatched_schema_object_rejected(self, schema):
        other = Schema.from_dict({"R": ("A", "B", "C"), "S": ("D",)})
        with pytest.raises(Exception, match="different schema"):
            Database(schema, backend=MemoryBackend(other))


@pytest.mark.parametrize("factory", BACKEND_FACTORIES)
class TestWriteReadRaces:
    """Concurrent writers against a CachingExecutor: the generation
    protocol must make it impossible to serve rows cached under a
    stale epoch."""

    def _setup(self, factory):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 512)])
        db = Database(schema, aschema, backend=factory(schema))
        db.insert("R", (1, 0))
        plan = is_boundedly_evaluable(
            parse_query("Q(y) :- R(x, y), x = 1"),
            aschema).witness["plan"]
        return db, plan

    def test_concurrent_inserts_and_deletes_never_serve_stale(
            self, factory):
        db, plan = self._setup(factory)
        cache = FetchCache(capacity=256)
        truth_lock = threading.Lock()
        live = {(1, 0)}
        # generation -> the exact row set the relation held when that
        # generation was published (single writer => well defined).
        truth = {db.generation("R"): frozenset(live)}
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            for i in range(1, 150):
                row = (1, i)
                with truth_lock:
                    db.insert("R", row)
                    live.add(row)
                    truth[db.generation("R")] = frozenset(live)
                if i % 3 == 0:
                    victim = (1, i - 2)
                    with truth_lock:
                        if db.delete("R", victim):
                            live.discard(victim)
                            truth[db.generation("R")] = frozenset(live)
            stop.set()

        def reader():
            executor = CachingExecutor(db, cache)
            while True:
                before = db.generation("R")
                answers = executor.execute(plan).answers
                after = db.generation("R")
                if before != after:
                    continue  # a write raced the read; no stable claim
                with truth_lock:
                    expected = truth.get(before)
                if expected is not None and \
                        answers != {(b,) for _, b in expected}:
                    failures.append(
                        f"gen {before}: got {sorted(answers)[:6]}..., "
                        f"expected {len(expected)} rows")
                if stop.is_set():
                    break

        threads = [threading.Thread(target=writer)] + \
            [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures[:3]
        # After all writes: a fresh read must see exactly the final
        # state, through the (now partly stale) cache.
        final = CachingExecutor(db, cache).execute(plan).answers
        assert final == {(b,) for _, b in live}

    def test_no_generation_bump_is_ever_lost(self, factory):
        """Two writers on disjoint rows: every effective single-row
        write must bump the generation exactly once — a lost bump
        would let the fetch cache serve pre-write rows forever."""
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1024)])
        db = Database(schema, aschema, backend=factory(schema))
        per_thread = 200

        def writer(offset):
            for i in range(per_thread):
                db.insert("R", (offset + i, i))

        threads = [threading.Thread(target=writer, args=(t * 10_000,))
                   for t in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert db.generation("R") == 2 * per_thread

    def test_attach_racing_writes_and_reads_stays_consistent(
            self, factory):
        """Re-attaching the access schema while writers insert and
        readers fetch: every stored row must end up reachable through
        the live indexes, and readers must never crash or get a
        permanently poisoned constraint resolution."""
        schema = Schema.from_dict({"R": ("A", "B")})
        constraint = AccessConstraint("R", ("A",), ("B",), 1024)
        aschema = AccessSchema(schema, [constraint])
        db = Database(schema, aschema, backend=factory(schema))
        done = threading.Event()
        errors: list[BaseException] = []
        # A re-created constraint, resolved structurally — the memoized
        # resolution is what an attach race could poison.
        probe = AccessConstraint("R", ("A",), ("B",), 1024)

        def writer():
            try:
                for i in range(300):
                    db.insert("R", (i % 7, i))
            finally:
                done.set()

        def attacher():
            while not done.is_set():
                db.attach_access_schema(aschema)

        def reader():
            while not done.is_set():
                try:
                    db.fetch_many(probe, [(a,) for a in range(7)])
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)
                    return

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=attacher),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        # The memoized probe resolution still answers correctly.
        for requested in (constraint, probe):
            fetched = {row
                       for rows in db.fetch_many(requested,
                                                 [(a,) for a in range(7)])
                       for row in rows}
            assert fetched == set(db.relation_tuples("R"))

    def test_write_after_warm_cache_is_always_visible(self, factory):
        db, plan = self._setup(factory)
        cache = FetchCache(capacity=64)
        executor = CachingExecutor(db, cache)
        assert executor.execute(plan).answers == {(0,)}
        db.insert("R", (1, 1))
        assert executor.execute(plan).answers == {(0,), (1,)}
        db.delete("R", (1, 0))
        assert executor.execute(plan).answers == {(1,)}
        # And the cache did serve hits in between for unchanged epochs.
        assert cache.info().hits >= 0
