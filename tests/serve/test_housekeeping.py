"""The single housekeeping loop: scheduling, error survival, reporting."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.housekeeping import Housekeeper


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def keeper(clock):
    return Housekeeper(clock=clock)


class TestScheduling:
    def test_nothing_due_before_the_first_interval(self, keeper, clock):
        ran = []
        keeper.register("sweep", 5.0, lambda: ran.append(1))
        clock.now = 4.9
        assert keeper.run_due() == 0
        assert ran == []

    def test_runs_when_due_and_reschedules(self, keeper, clock):
        ran = []
        keeper.register("sweep", 5.0, lambda: ran.append(1))
        clock.now = 5.0
        assert keeper.run_due() == 1
        assert ran == [1]
        # Re-armed relative to the run, not the original registration.
        clock.now = 9.9
        assert keeper.run_due() == 0
        clock.now = 10.0
        assert keeper.run_due() == 1
        assert ran == [1, 1]

    def test_handlers_run_independently(self, keeper, clock):
        ran = []
        keeper.register("fast", 1.0, lambda: ran.append("fast"))
        keeper.register("slow", 10.0, lambda: ran.append("slow"))
        clock.now = 1.0
        keeper.run_due()
        assert ran == ["fast"]
        clock.now = 10.0
        keeper.run_due()
        assert sorted(ran) == ["fast", "fast", "slow"]

    def test_duplicate_names_and_bad_intervals_rejected(self, keeper):
        keeper.register("x", 1.0, lambda: None)
        with pytest.raises(ValueError):
            keeper.register("x", 1.0, lambda: None)
        with pytest.raises(ValueError):
            keeper.register("y", 0.0, lambda: None)


class TestErrorSurvival:
    def test_a_raising_handler_stays_scheduled(self, keeper, clock):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient dependency down")
            return "ok"

        keeper.register("flaky", 1.0, flaky)
        clock.now = 1.0
        keeper.run_due()
        clock.now = 2.0
        keeper.run_due()
        assert len(calls) == 2
        report = keeper.report()["flaky"]
        assert report["runs"] == 1
        assert report["errors"] == 1
        assert "transient dependency down" in report["last_error"]


class TestReport:
    def test_report_shape(self, keeper, clock):
        keeper.register("sweep", 5.0, lambda: 3)
        clock.now = 5.0
        keeper.run_due()
        report = keeper.report()
        assert report == {"sweep": {"interval_s": 5.0, "runs": 1,
                                    "errors": 0, "last_error": ""}}


class TestAsyncLoop:
    def test_run_executes_due_handlers_and_stops(self):
        keeper = Housekeeper()
        keeper.MAX_SLEEP_S = 0.02
        ran = []
        keeper.register("tick", 0.01, lambda: ran.append(1))

        async def go():
            stop = asyncio.Event()
            task = asyncio.ensure_future(keeper.run(stop))
            await asyncio.sleep(0.2)
            stop.set()
            await asyncio.wait_for(task, timeout=5.0)

        asyncio.run(go())
        assert len(ran) >= 2
        assert keeper.report()["tick"]["runs"] == len(ran)
