"""The minimal HTTP layer: request parsing, limits, responses."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import (MAX_BODY_BYTES, HttpError, Request,
                              json_response, read_request, render_response)


def parse(raw: bytes) -> Request | None:
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_without_body(self):
        request = parse(b"GET /healthz HTTP/1.1\r\n"
                        b"Host: localhost\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "localhost"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_content_length_body(self):
        body = b'{"query": "Q(x) :- R(x)"}'
        request = parse(b"POST /query HTTP/1.1\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body)
        assert request.method == "POST"
        assert request.body == body
        assert request.json()["query"] == "Q(x) :- R(x)"

    def test_connection_close_disables_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as info:
            parse(b"NONSENSE\r\n\r\n")
        assert info.value.status == 400

    def test_malformed_header_is_400(self):
        with pytest.raises(HttpError) as info:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert info.value.status == 400

    def test_bad_content_length_is_400(self):
        for value in (b"abc", b"-5"):
            with pytest.raises(HttpError) as info:
                parse(b"GET / HTTP/1.1\r\nContent-Length: " + value
                      + b"\r\n\r\n")
            assert info.value.status == 400

    def test_oversized_body_is_413(self):
        with pytest.raises(HttpError) as info:
            parse(b"POST / HTTP/1.1\r\nContent-Length: "
                  + str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n")
        assert info.value.status == 413

    def test_truncated_body_is_400(self):
        with pytest.raises(HttpError) as info:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        assert info.value.status == 400

    def test_chunked_transfer_is_refused(self):
        with pytest.raises(HttpError) as info:
            parse(b"POST / HTTP/1.1\r\n"
                  b"Transfer-Encoding: chunked\r\n\r\n")
        assert info.value.status == 400


class TestRequestJson:
    def test_empty_body_is_400(self):
        with pytest.raises(HttpError):
            Request("POST", "/query").json()

    def test_invalid_json_is_400(self):
        with pytest.raises(HttpError):
            Request("POST", "/query", body=b"{nope").json()

    def test_non_object_json_is_400(self):
        with pytest.raises(HttpError):
            Request("POST", "/query", body=b"[1, 2]").json()


class TestResponses:
    def test_render_response_shape(self):
        raw = render_response(200, b"hi", content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2" in head
        assert b"Connection: keep-alive" in head
        assert body == b"hi"

    def test_json_response_round_trips_with_extra_headers(self):
        raw = json_response(429, {"error": "shed"},
                            extra_headers=(("Retry-After", "1"),),
                            keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Retry-After: 1" in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"error": "shed"}
