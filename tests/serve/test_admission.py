"""Admission gates: the capacity controller and the certificate
(budget) gate, including the over-budget and no-certificate refusals."""

from __future__ import annotations

import threading

import pytest

from repro.engine.cost import static_bounds
from repro.serve.admission import (AdmissionController, Tenant,
                                   budget_decision)
from repro.service import BoundedQueryService

BOUNDED_QUERY = "Q(d) :- Accident(a, d, t), t = '1/5/2005'"
UNBOUNDED_QUERY = "Q(a) :- Casualty(c, a, cl, v)"


@pytest.fixture
def service(accident_db):
    return BoundedQueryService(accident_db)


class TestAdmissionController:
    def test_admits_until_the_cap_then_sheds(self):
        gate = AdmissionController(max_inflight=2)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()  # full: shed
        assert gate.inflight == 2
        assert gate.admitted_total == 2 and gate.shed_total == 1
        gate.leave()
        assert gate.try_enter()  # a slot freed up

    def test_leave_without_enter_is_a_bug(self):
        gate = AdmissionController(max_inflight=1)
        with pytest.raises(RuntimeError):
            gate.leave()

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)

    def test_thread_safe_under_contention(self):
        gate = AdmissionController(max_inflight=5)
        outcomes = []

        def worker():
            for _ in range(200):
                if gate.try_enter():
                    outcomes.append(1)
                    gate.leave()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gate.inflight == 0
        assert gate.admitted_total == len(outcomes)
        assert gate.admitted_total + gate.shed_total == 8 * 200


class TestBudgetDecision:
    def test_no_budget_admits_everything(self, accident_db, service):
        tenant = Tenant("t", service, budget=None)
        for text in (BOUNDED_QUERY, UNBOUNDED_QUERY):
            entry = service.compile(text)
            decision = budget_decision(entry, tenant, accident_db.size())
            assert decision.admitted

    def test_bound_within_budget_admits_and_quotes_bound(
            self, accident_db, service):
        entry = service.compile(BOUNDED_QUERY)
        assert entry.bounded
        bound = static_bounds(entry.plan,
                              db_size=accident_db.size()).fetch_bound
        tenant = Tenant("t", service, budget=bound)
        decision = budget_decision(entry, tenant, accident_db.size())
        assert decision.admitted
        assert decision.bound == bound

    def test_bound_over_budget_rejects_before_execution(
            self, accident_db, service):
        entry = service.compile(BOUNDED_QUERY)
        bound = static_bounds(entry.plan,
                              db_size=accident_db.size()).fetch_bound
        tenant = Tenant("t", service, budget=bound - 1)
        decision = budget_decision(entry, tenant, accident_db.size())
        assert not decision.admitted
        assert decision.bound == bound
        assert "exceeds" in decision.reason

    def test_uncertified_query_rejected_under_finite_budget(
            self, accident_db, service):
        entry = service.compile(UNBOUNDED_QUERY)
        assert not entry.bounded
        tenant = Tenant("t", service, budget=10_000)
        decision = budget_decision(entry, tenant, accident_db.size())
        assert not decision.admitted
        assert "no cost certificate" in decision.reason
