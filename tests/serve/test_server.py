"""The serving tier end to end: routing, certificate-gated admission,
shedding, deadlines, multi-tenancy, metrics — driven through
``ReproServer.handle`` (no sockets), plus one live-socket round trip."""

from __future__ import annotations

import asyncio
import http.client
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import ReproServer, ServerConfig, Request, run_forever

DATE_QUERY = "Q(d) :- Accident(a, d, t), t = '1/5/2005'"
UNBOUNDED_QUERY = "Q(a) :- Casualty(c, a, cl, v)"


@pytest.fixture
def server(accident_db):
    return ReproServer(accident_db, ServerConfig(workers=2, queue_depth=2),
                       registry=MetricsRegistry())


def call(server: ReproServer, method: str, path: str,
         payload: dict | None = None):
    body = b"" if payload is None else json.dumps(payload).encode()
    raw = server.handle(Request(method, path, body=body))
    head, _, content = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    headers = dict(
        line.decode().split(": ", 1)
        for line in head.split(b"\r\n")[1:] if b": " in line)
    parsed = (json.loads(content)
              if headers.get("Content-Type", "").startswith(
                  "application/json") else content.decode())
    return status, headers, parsed


class TestRouting:
    def test_healthz(self, server):
        status, _, body = call(server, "GET", "/healthz")
        assert status == 200 and body == {"status": "ok"}

    def test_unknown_route_is_404(self, server):
        status, _, body = call(server, "GET", "/nope")
        assert status == 404 and "no route" in body["error"]

    def test_query_requires_post(self, server):
        status, _, _ = call(server, "GET", "/query")
        assert status == 405

    def test_malformed_body_is_400(self, server):
        status, _, _ = call(server, "POST", "/query")
        assert status == 400

    def test_query_needs_exactly_one_of_query_or_template(self, server):
        for payload in ({}, {"query": DATE_QUERY, "template": "x"}):
            payload = dict(payload)
            status, _, body = call(server, "POST", "/query", payload)
            assert status == 400


class TestQueryPath:
    def test_bounded_query_answers(self, server):
        status, _, body = call(server, "POST", "/query",
                               {"query": DATE_QUERY})
        assert status == 200
        assert body["bounded"] is True
        assert sorted(body["answers"]) == [["Queens Park"], ["Soho"]]
        assert body["count"] == 2

    def test_unbounded_query_falls_back_without_budget(self, server):
        status, _, body = call(server, "POST", "/query",
                               {"query": UNBOUNDED_QUERY})
        assert status == 200
        assert body["bounded"] is False
        assert body["fallback_reason"]

    def test_unparsable_query_is_400(self, server):
        status, _, body = call(server, "POST", "/query",
                               {"query": "this is not datalog"})
        assert status == 400

    def test_unknown_tenant_is_404(self, server):
        status, _, _ = call(server, "POST", "/query",
                            {"tenant": "ghost", "query": DATE_QUERY})
        assert status == 404

    def test_templates_register_and_execute(self, server):
        status, _, body = call(
            server, "POST", "/templates",
            {"name": "by_date",
             "text": "Q(d) :- Accident(a, d, t), t = $date"})
        assert status == 200
        assert body["parameters"] == ["date"]
        status, _, body = call(
            server, "POST", "/query",
            {"template": "by_date", "params": {"date": "1/5/2005"}})
        assert status == 200
        assert sorted(body["answers"]) == [["Queens Park"], ["Soho"]]

    def test_expired_deadline_is_504_and_counted(self, server):
        status, _, body = call(
            server, "POST", "/query",
            {"query": DATE_QUERY, "timeout_ms": 1e-6})
        assert status == 504
        stats = server.tenants["default"].service.stats()
        assert stats.deadline_exceeded_requests == 1
        # And the exposition mirrors it.
        status, _, text = call(server, "GET", "/metrics")
        assert "repro_deadline_exceeded_requests_total 1" in text

    def test_bad_timeout_is_400(self, server):
        status, _, _ = call(server, "POST", "/query",
                            {"query": DATE_QUERY, "timeout_ms": -5})
        assert status == 400


class TestShedding:
    def test_full_admission_queue_sheds_with_retry_after(self, server):
        while server.admission.try_enter():
            pass  # occupy every slot
        status, headers, body = call(server, "POST", "/query",
                                     {"query": DATE_QUERY})
        assert status == 429
        assert headers["Retry-After"] == "1"
        assert "shed" in body["error"]
        stats = server.tenants["default"].service.stats()
        assert stats.shed_requests == 1
        assert stats.requests == 0  # refused before execution


class TestSubmit:
    """The admission-aware dispatch the async loop and load
    generators use: the gate fires on the calling thread, before the
    thread pool."""

    def submit(self, server, method, path, payload=None):
        body = b"" if payload is None else json.dumps(payload).encode()
        raw = server.submit(Request(method, path, body=body)).result(10)
        return int(raw.split()[1]), raw

    def test_query_executes_on_the_pool(self, server):
        status, raw = self.submit(server, "POST", "/query",
                                  {"query": DATE_QUERY})
        assert status == 200
        assert b"Queens Park" in raw

    def test_non_query_routes_pass_through(self, server):
        status, _ = self.submit(server, "GET", "/healthz")
        assert status == 200

    def test_shed_resolves_without_touching_the_pool(self, server):
        while server.admission.try_enter():
            pass
        status, raw = self.submit(server, "POST", "/query",
                                  {"query": DATE_QUERY})
        assert status == 429 and b"Retry-After" in raw
        assert server.tenants["default"].service.stats().shed_requests == 1

    def test_inflight_released_after_completion(self, server):
        futures = [server.submit(Request(
            "POST", "/query",
            body=json.dumps({"query": DATE_QUERY}).encode()))
            for _ in range(3)]
        for future in futures:
            future.result(10)
        assert server.admission.inflight == 0
        assert server.admission.admitted_total == 3

    def test_parse_errors_resolve_immediately(self, server):
        status, _ = self.submit(server, "POST", "/query", None)
        assert status == 400
        status, _ = self.submit(server, "POST", "/query",
                                {"tenant": "ghost", "query": DATE_QUERY})
        assert status == 404


class TestBudgetGate:
    def test_over_budget_is_429_before_execution(self, accident_db):
        server = ReproServer(
            accident_db, ServerConfig(workers=2, default_budget=5))
        status, headers, body = call(server, "POST", "/query",
                                     {"query": DATE_QUERY})
        assert status == 429
        assert headers["Retry-After"] == "1"
        assert body["bound"] > 5
        stats = server.tenants["default"].service.stats()
        assert stats.rejected_requests == 1
        assert stats.requests == 0

    def test_uncertified_query_refused_under_finite_budget(
            self, accident_db):
        server = ReproServer(
            accident_db, ServerConfig(workers=2, default_budget=10_000))
        status, _, body = call(server, "POST", "/query",
                               {"query": UNBOUNDED_QUERY})
        assert status == 429
        assert "no cost certificate" in body["error"]

    def test_within_budget_executes(self, accident_db):
        server = ReproServer(
            accident_db, ServerConfig(workers=2, default_budget=10_000))
        status, _, body = call(server, "POST", "/query",
                               {"query": DATE_QUERY})
        assert status == 200
        assert body["certified_fetch_bound"] <= 10_000


class TestTenants:
    CONSTRAINTS = [["Accident", ["date"], ["aid"], 610],
                   ["Accident", ["aid"], ["district", "date"], 1]]

    def test_register_and_query_as_tenant(self, server):
        status, _, body = call(server, "POST", "/tenants",
                               {"name": "acme", "budget": 10_000,
                                "constraints": self.CONSTRAINTS})
        assert status == 200 and body["tenant"] == "acme"
        status, _, body = call(server, "POST", "/query",
                               {"tenant": "acme", "query": DATE_QUERY})
        assert status == 200
        assert sorted(body["answers"]) == [["Queens Park"], ["Soho"]]

    def test_tenant_budget_gates_independently(self, server):
        call(server, "POST", "/tenants",
             {"name": "small", "budget": 3,
              "constraints": self.CONSTRAINTS})
        status, _, _ = call(server, "POST", "/query",
                            {"tenant": "small", "query": DATE_QUERY})
        assert status == 429  # small tenant over budget
        status, _, _ = call(server, "POST", "/query",
                            {"query": DATE_QUERY})
        assert status == 200  # default tenant unaffected
        payload = server.stats_payload()
        assert payload["tenants"]["small"]["rejected_requests"] == 1
        assert payload["tenants"]["default"]["rejected_requests"] == 0

    def test_duplicate_or_malformed_registration_is_400(self, server):
        call(server, "POST", "/tenants",
             {"name": "acme", "constraints": self.CONSTRAINTS})
        for payload in (
                {"name": "acme", "constraints": self.CONSTRAINTS},
                {"constraints": self.CONSTRAINTS},
                {"name": "x", "constraints": []},
                {"name": "x", "constraints": [["Accident", "bad"]]},
                {"name": "x", "budget": -1,
                 "constraints": self.CONSTRAINTS}):
            status, _, _ = call(server, "POST", "/tenants", payload)
            assert status == 400


class TestStatsAndMetrics:
    def test_stats_payload_shape(self, server):
        call(server, "POST", "/query", {"query": DATE_QUERY})
        status, _, payload = call(server, "GET", "/stats")
        assert status == 200
        assert payload["tenants"]["default"]["requests"] == 1
        assert payload["admission"]["max_inflight"] == 4
        assert set(payload["housekeeping"]) == {"cache_sweep",
                                                "stats_flush",
                                                "peer_health"}

    def test_metrics_exposition_includes_all_layers(self, server):
        call(server, "POST", "/query", {"query": DATE_QUERY})
        status, _, text = call(server, "GET", "/metrics")
        assert status == 200
        for family in ("repro_requests_total", "repro_shed_requests_total",
                       "repro_rejected_requests_total",
                       "repro_deadline_exceeded_requests_total",
                       "repro_serve_inflight", "repro_db_rows",
                       "repro_housekeeping_runs_total"):
            assert family in text, family

    def test_housekeeping_handlers_run_clean(self, server):
        # Drive every registered handler once, synchronously; none may
        # error against a live database.
        for handler in server.housekeeper._handlers.values():
            handler.next_due = 0.0
        assert server.housekeeper.run_due() == 3
        report = server.housekeeper.report()
        assert all(entry["errors"] == 0 for entry in report.values())


class TestLiveSocket:
    def test_round_trip_with_keep_alive(self, accident_db):
        server = ReproServer(accident_db,
                             ServerConfig(port=18931, workers=2))

        async def go():
            ready = asyncio.Event()
            task = asyncio.ensure_future(run_forever(server, ready=ready))
            await asyncio.wait_for(ready.wait(), timeout=10)

            def client():
                conn = http.client.HTTPConnection("127.0.0.1", 18931,
                                                  timeout=10)
                conn.request("POST", "/query",
                             body=json.dumps({"query": DATE_QUERY}))
                first = conn.getresponse()
                one = json.loads(first.read())
                # Same connection again: keep-alive works.
                conn.request("GET", "/stats")
                second = json.loads(conn.getresponse().read())
                conn.close()
                return first.status, one, second

            status, one, stats = await asyncio.get_running_loop(
                ).run_in_executor(None, client)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            return status, one, stats

        status, one, stats = asyncio.run(go())
        assert status == 200
        assert sorted(one["answers"]) == [["Queens Park"], ["Soho"]]
        assert stats["tenants"]["default"]["requests"] == 1
