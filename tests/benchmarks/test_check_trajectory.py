"""The benchmark-trajectory gate must fail on counter regressions and
only warn on wall-clock deltas — proven here with injected regressions
against synthetic BENCH_*.json pairs."""

from __future__ import annotations

import copy
import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = (pathlib.Path(__file__).parents[2]
           / "benchmarks" / "check_trajectory.py")
spec = importlib.util.spec_from_file_location("check_trajectory", _SCRIPT)
check_trajectory = importlib.util.module_from_spec(spec)
# Registered before exec: @dataclass resolves types via sys.modules.
sys.modules["check_trajectory"] = check_trajectory
spec.loader.exec_module(check_trajectory)


BASELINE = {
    "experiment": "EXP-T",
    "title": "synthetic",
    "metrics": {
        "tuples_fetched": 4460,
        "index_lookups": 2919,
        "fetch_cache_hit_rate": 0.93,
        "warm_speedup": 11.7,
        "cold_ms_per_request": 2.27,
        "end_to_end_median_ms": {"memory": 14.6, "sharded": 11.2},
        "rule_firings": {"dead-step": 299, "unit-product": 30},
    },
}


def write(directory, payload, name="BENCH_exp-t.json"):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    write(baseline, BASELINE)
    return baseline, fresh


def run(baseline, fresh, capsys):
    code = check_trajectory.main(
        ["--baseline", str(baseline), "--fresh", str(fresh)])
    return code, capsys.readouterr().out


def fresh_payload(**metric_overrides):
    payload = copy.deepcopy(BASELINE)
    payload["metrics"].update(metric_overrides)
    return payload


class TestGate:
    def test_identical_results_pass(self, dirs, capsys):
        baseline, fresh = dirs
        write(fresh, fresh_payload())
        code, out = run(baseline, fresh, capsys)
        assert code == 0
        assert "0 regression(s)" in out

    def test_injected_counter_regression_fails(self, dirs, capsys):
        baseline, fresh = dirs
        write(fresh, fresh_payload(tuples_fetched=4700))
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "FAIL EXP-T tuples_fetched: counter regression" in out
        assert "4460 -> 4700" in out

    def test_nested_counter_regression_fails(self, dirs, capsys):
        baseline, fresh = dirs
        write(fresh, fresh_payload(
            rule_firings={"dead-step": 299, "unit-product": 45}))
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "FAIL EXP-T rule_firings.unit-product" in out

    def test_wallclock_inflation_only_warns(self, dirs, capsys):
        baseline, fresh = dirs
        write(fresh, fresh_payload(
            warm_speedup=3.0, cold_ms_per_request=9.99,
            end_to_end_median_ms={"memory": 80.0, "sharded": 60.0}))
        code, out = run(baseline, fresh, capsys)
        assert code == 0
        assert "WARN EXP-T warm_speedup" in out
        assert "WARN EXP-T end_to_end_median_ms.memory" in out
        assert "FAIL" not in out

    def test_hit_rate_drop_fails_but_jitter_passes(self, dirs, capsys):
        baseline, fresh = dirs
        write(fresh, fresh_payload(fetch_cache_hit_rate=0.92))
        code, _ = run(baseline, fresh, capsys)
        assert code == 0  # within the jitter tolerance
        write(fresh, fresh_payload(fetch_cache_hit_rate=0.60))
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "FAIL EXP-T fetch_cache_hit_rate: rate dropped" in out

    def test_counter_improvement_warns_to_refresh_baseline(self, dirs,
                                                           capsys):
        baseline, fresh = dirs
        write(fresh, fresh_payload(index_lookups=2000))
        code, out = run(baseline, fresh, capsys)
        assert code == 0
        assert "refresh the committed baseline" in out

    def test_vanished_counter_subkey_warns_as_improvement(self, dirs,
                                                          capsys):
        # A rule that stops firing entirely builds no rule_firings
        # entry — an improvement to zero, not a broken run.
        baseline, fresh = dirs
        write(fresh, fresh_payload(rule_firings={"dead-step": 299}))
        code, out = run(baseline, fresh, capsys)
        assert code == 0
        assert "WARN EXP-T rule_firings.unit-product: counter absent" in out

    def test_vanished_wallclock_subkey_fails(self, dirs, capsys):
        # A timing config disappearing means the run changed shape.
        baseline, fresh = dirs
        write(fresh, fresh_payload(end_to_end_median_ms={"memory": 14.6}))
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "FAIL EXP-T end_to_end_median_ms.sharded: missing" in out

    def test_missing_metric_fails(self, dirs, capsys):
        baseline, fresh = dirs
        payload = fresh_payload()
        del payload["metrics"]["index_lookups"]
        write(fresh, payload)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "FAIL EXP-T index_lookups: missing" in out

    def test_missing_experiment_fails(self, dirs, capsys):
        baseline, fresh = dirs
        fresh.mkdir()
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "experiment missing from the fresh run" in out

    def test_new_experiment_and_metric_warn(self, dirs, capsys):
        baseline, fresh = dirs
        write(fresh, fresh_payload(brand_new_counter=1))
        extra = {"experiment": "EXP-NEW", "metrics": {"tuples": 5}}
        write(fresh, extra, name="BENCH_exp-new.json")
        code, out = run(baseline, fresh, capsys)
        assert code == 0
        assert "WARN EXP-T brand_new_counter" in out
        assert "WARN EXP-NEW" in out

    def test_missing_directory_is_usage_error(self, dirs, capsys):
        baseline, _ = dirs
        assert check_trajectory.main(
            ["--baseline", str(baseline),
             "--fresh", str(baseline / "nope")]) == 2


class TestHardGates:
    def gated_baseline(self):
        payload = copy.deepcopy(BASELINE)
        payload["gates"] = {"warm_ms": {"max_increase_pct": 2.0}}
        payload["metrics"]["warm_ms"] = 0.150
        return payload

    def test_gated_wallclock_within_bound_passes(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        write(baseline, self.gated_baseline())
        payload = self.gated_baseline()
        payload["metrics"]["warm_ms"] = 0.152  # +1.3%, inside the gate
        write(fresh, payload)
        code, out = run(baseline, fresh, capsys)
        assert code == 0
        assert "WARN EXP-T warm_ms: wall-clock delta" in out

    def test_gated_wallclock_over_bound_fails(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        write(baseline, self.gated_baseline())
        payload = self.gated_baseline()
        payload["metrics"]["warm_ms"] = 0.160  # +6.7%: warns AND fails
        write(fresh, payload)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "FAIL EXP-T warm_ms: hard gate (max +2%) exceeded" in out
        assert "0.15 -> 0.16" in out

    def test_gated_improvement_passes(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        write(baseline, self.gated_baseline())
        payload = self.gated_baseline()
        payload["metrics"]["warm_ms"] = 0.100
        write(fresh, payload)
        code, _ = run(baseline, fresh, capsys)
        assert code == 0

    def test_gate_on_missing_metric_fails(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        payload = self.gated_baseline()
        del payload["metrics"]["warm_ms"]
        write(baseline, payload)
        write(fresh, payload)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "FAIL EXP-T warm_ms: gated metric missing" in out

    def test_gate_without_bound_fails_loudly(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        payload = self.gated_baseline()
        payload["gates"]["warm_ms"] = {}
        write(baseline, payload)
        write(fresh, payload)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "gate declares no numeric max_increase_pct" in out

    def test_fresh_only_gate_is_enforced(self, tmp_path, capsys):
        # A PR that adds a gate before its baseline lands still gets
        # the check, against the baseline's existing metric value.
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        base = copy.deepcopy(BASELINE)
        base["metrics"]["warm_ms"] = 0.150
        write(baseline, base)
        payload = self.gated_baseline()
        payload["metrics"]["warm_ms"] = 0.160
        write(fresh, payload)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "hard gate" in out

    def test_floor_gate_fails_below_min_value(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        payload = copy.deepcopy(BASELINE)
        payload["gates"] = {"boundary_speedup": {"min_value": 3.0}}
        payload["metrics"]["boundary_speedup"] = 12.0
        write(baseline, payload)
        below = copy.deepcopy(payload)
        below["metrics"]["boundary_speedup"] = 2.4
        write(fresh, below)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert ("FAIL EXP-T boundary_speedup: hard floor gate (min 3) "
                "broken: fresh value is 2.4") in out

    def test_floor_gate_passes_at_or_above_min_value(self, tmp_path,
                                                     capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        payload = copy.deepcopy(BASELINE)
        payload["gates"] = {"boundary_speedup": {"min_value": 3.0}}
        payload["metrics"]["boundary_speedup"] = 12.0
        write(baseline, payload)
        write(fresh, payload)
        code, out = run(baseline, fresh, capsys)
        assert code == 0

    def test_floor_gate_binds_without_a_baseline_metric(self, tmp_path,
                                                        capsys):
        # min_value checks the fresh value against the declared
        # constant, so a brand-new gated metric is enforced on the very
        # PR that introduces it.
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        write(baseline, copy.deepcopy(BASELINE))
        payload = copy.deepcopy(BASELINE)
        payload["gates"] = {"boundary_speedup": {"min_value": 3.0}}
        payload["metrics"]["boundary_speedup"] = 1.1
        write(fresh, payload)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "FAIL EXP-T boundary_speedup: hard floor gate" in out

    def test_combined_pct_and_floor_gate(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        payload = copy.deepcopy(BASELINE)
        payload["gates"] = {"warm_speedup": {"max_increase_pct": 500.0,
                                             "min_value": 3.0}}
        write(baseline, payload)
        ok = copy.deepcopy(payload)
        ok["metrics"]["warm_speedup"] = 5.0
        write(fresh, ok)
        code, _ = run(baseline, fresh, capsys)
        assert code == 0
        bad = copy.deepcopy(payload)
        bad["metrics"]["warm_speedup"] = 2.0
        write(fresh, bad)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert "hard floor gate" in out

    def test_gate_paths_dot_into_nested_metrics(self, tmp_path, capsys):
        baseline, fresh = tmp_path / "b", tmp_path / "f"
        payload = copy.deepcopy(BASELINE)
        payload["gates"] = {
            "end_to_end_median_ms.sharded": {"max_increase_pct": 10.0}}
        write(baseline, payload)
        over = fresh_payload(
            end_to_end_median_ms={"memory": 14.6, "sharded": 13.0})
        write(fresh, over)
        code, out = run(baseline, fresh, capsys)
        assert code == 1
        assert ("FAIL EXP-T end_to_end_median_ms.sharded: hard gate"
                in out)

    def test_lookup_prefers_literal_keys_with_dots(self):
        metrics = {"observability": {"ops_total.op=hash_join": 5},
                   "flat.key": 7}
        assert check_trajectory.lookup(
            metrics, "observability.ops_total.op=hash_join") == 5
        assert check_trajectory.lookup(metrics, "flat.key") == 7
        assert check_trajectory.lookup(metrics, "missing.path") is None


class TestClassify:
    @pytest.mark.parametrize("name,expected", [
        ("tuples_fetched", "counter"),
        ("accidents_boundary_x_values", "counter"),
        ("rule_firings.dead-step", "counter"),
        ("db_size", "counter"),
        ("warm_speedup", "wallclock"),
        ("cold_open_wal_ms", "wallclock"),
        ("accidents_end_to_end_median_ms.memory/per-value", "wallclock"),
        ("fetch_overhead_disk_vs_memory_ratio", "wallclock"),
        ("fetch_cache_hit_rate", "rate"),
        ("boundary_rows_per_sec", "wallclock"),
        ("operator_throughput", "wallclock"),
    ])
    def test_metric_classes(self, name, expected):
        assert check_trajectory.classify(name) == expected


def test_harness_gate_lands_in_bench_json(tmp_path, monkeypatch):
    """ExperimentLog.gate declarations ride the flushed JSON, so a
    baseline refresh keeps its gates."""
    harness_spec = importlib.util.spec_from_file_location(
        "_bench_harness", _SCRIPT.parent / "_harness.py")
    harness = importlib.util.module_from_spec(harness_spec)
    harness_spec.loader.exec_module(harness)
    monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path))
    log = harness.ExperimentLog("EXP-T", "synthetic")
    log.metric("warm_ms", 0.15)
    log.gate("warm_ms", max_increase_pct=2.0)
    log.metric("boundary_speedup", 12.0)
    log.gate("boundary_speedup", min_value=3.0)
    log.flush()
    payload = json.loads((tmp_path / "BENCH_exp-t.json").read_text())
    assert payload["gates"] == {"warm_ms": {"max_increase_pct": 2.0},
                                "boundary_speedup": {"min_value": 3.0}}
    assert payload["metrics"]["warm_ms"] == 0.15
    with pytest.raises(ValueError):
        log.gate("warm_ms")


def test_real_committed_baselines_self_compare_clean(tmp_path, capsys):
    """The committed baselines diffed against themselves: exit 0, no
    issues — guards against a classifier change silently gating on a
    metric the policy says must stay warn-only."""
    results = _SCRIPT.parent / "results"
    code = check_trajectory.main(
        ["--baseline", str(results), "--fresh", str(results)])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 regression(s)" in out and "0 warning(s)" in out
