"""Integration: every worked example in the paper, decided as printed.

This file is the machine-checkable version of EXP-T3 (DESIGN.md): each
test asserts the exact verdict the paper states for its examples, using
only the public API.  The benchmark ``bench_table1_examples.py`` prints
the same table.
"""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Schema, Var
from repro.core import (a_contained, analyze_coverage, is_boundedly_evaluable,
                        is_covered, lower_envelope, specialize_minimally,
                        upper_envelope)
from repro.engine import evaluate, execute_plan, static_bounds
from repro.query import parse_cq, parse_ucq


class TestExample11:
    """Q0 is boundedly evaluable under ψ1–ψ4; its plan fetches at most
    ~234850 tuples regardless of |D|."""

    def test_covered_and_bounded(self, accident_access, q0):
        assert is_covered(q0, accident_access)
        decision = is_boundedly_evaluable(q0, accident_access)
        assert decision

    def test_fetch_budget_matches_paper_arithmetic(self, accident_access,
                                                   q0):
        plan = is_boundedly_evaluable(q0, accident_access).witness["plan"]
        cost = static_bounds(plan)
        # Paper: 610 + 610·192·2 = 234850 index-retrieved tuples; our
        # plan adds the ψ3 key verification pass (610 more).
        assert cost.fetch_bound == 610 + 610 + 2 * 610 * 192
        assert cost.fetch_bound <= 235460

    def test_plan_correct_and_frugal(self, accident_access, accident_db,
                                     q0):
        plan = is_boundedly_evaluable(q0, accident_access).witness["plan"]
        result = execute_plan(plan, accident_db)
        assert result.answers == evaluate(q0, accident_db) == {(34,), (51,)}
        assert result.stats.tuples_fetched < accident_db.size()


class TestExample31:
    def test_part1_not_boundedly_evaluable(self, example31):
        _, a1, q1 = example31["1"]
        assert is_boundedly_evaluable(q1, a1).is_no
        assert is_covered(q1, a1).is_no

    def test_part2_boundedly_evaluable_but_not_covered(self, example31):
        _, a2, q2 = example31["2"]
        assert is_boundedly_evaluable(q2, a2)
        assert is_covered(q2, a2).is_no  # Example 3.12.

    def test_part3_covered_hence_bounded(self, example31):
        _, a3, q3 = example31["3"]
        assert is_covered(q3, a3)
        assert is_boundedly_evaluable(q3, a3)


class TestExample310:
    def test_cov_q3(self, example31):
        _, a3, q3 = example31["3"]
        result = analyze_coverage(q3, a3)
        assert {v.name for v in result.covered} == {"x", "y", "z3",
                                                    "x1", "x2"}

    def test_q1_fails_condition_c(self, example31):
        _, a1, q1 = example31["1"]
        result = analyze_coverage(q1, a1)
        assert result.unindexed_atoms == [0]

    def test_q0_witnesses(self, accident_access, q0):
        result = analyze_coverage(q0, accident_access)
        witnesses = {result.query.atoms[i].relation:
                     result.atom_witnesses[i].constraint
                     for i in result.atom_witnesses}
        assert witnesses["Accident"].x == ("aid",)      # ψ3
        assert witnesses["Casualty"].x == ("aid",)      # ψ2
        assert witnesses["Vehicle"].x == ("vid",)       # ψ4


class TestExample35:
    @pytest.fixture
    def first_setting(self):
        schema = Schema.from_dict({"R": ("X",), "S": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", (), ("X",), 2)])
        q = parse_cq("Q(x) :- R(y1), y1 = 1, R(y2), y2 = 0, S(x, y), R(y)")
        union = parse_ucq("Qp(x) :- S(x, y), R(y), y = 1 ; "
                          "Qp(x) :- S(x, y), R(y), y = 0")
        return access, q, union

    def test_union_lemma_fails_under_a(self, first_setting):
        access, q, union = first_setting
        assert a_contained(q, union, access)
        for disjunct in union.disjuncts:
            assert a_contained(q, disjunct, access).is_no

    @pytest.fixture
    def second_setting(self):
        schema = Schema.from_dict({"Rp": ("A", "B", "C")})
        access = AccessSchema(schema, [
            AccessConstraint("Rp", ("A",), ("B",), 4)])
        union = parse_ucq("Q(y) :- Rp(x, y, z), x = 1 ; "
                          "Q(y) :- Rp(x, y, z), x = 1, z = y")
        return access, union

    def test_subquery_of_bounded_union_need_not_be_bounded(
            self, second_setting):
        access, union = second_setting
        assert is_boundedly_evaluable(union, access)
        assert is_boundedly_evaluable(union.disjuncts[0], access)
        assert is_boundedly_evaluable(union.disjuncts[1], access).is_no


class TestExample312:
    def test_q2_not_covered_but_equivalent_to_covered(self, example31):
        _, a2, q2 = example31["2"]
        assert is_covered(q2, a2).is_no
        assert is_boundedly_evaluable(q2, a2)


class TestExample41:
    def test_q1_bounded_not_evaluable_envelopes_exist(self, example41):
        _, access, q1, _ = example41
        assert is_boundedly_evaluable(q1, access).is_no
        assert upper_envelope(q1, access)
        assert lower_envelope(q1, access, k=2)

    def test_q2_no_envelopes(self, example41):
        _, access, _, q2 = example41
        assert is_boundedly_evaluable(q2, access).is_no
        assert upper_envelope(q2, access).is_no
        assert lower_envelope(q2, access, k=2).is_no


class TestExample45:
    def test_lower_envelope_via_split(self, example45):
        _, access, q = example45
        assert is_covered(q, access).is_no
        decision = lower_envelope(q, access, k=2)
        assert decision
        # The paper's Q' has two atoms over R with fresh z1/z2.
        assert len(decision.witness.query.atoms) == 2


class TestExample51:
    def test_one_parameter_suffices_and_it_is_date(self, accident_access):
        q = parse_cq("Q(xa) :- Accident(aid, district, date), "
                     "Casualty(cid, aid, class, vid), "
                     "Vehicle(vid, dri, xa)")
        assert is_boundedly_evaluable(q, accident_access).is_no
        decision = specialize_minimally(
            q, accident_access,
            parameters=[Var("date"), Var("district")])
        assert decision
        assert [v.name for v in decision.witness] == ["date"]
        assert specialize_minimally(
            q, accident_access, parameters=[Var("district")]).is_no


class TestTableOneShape:
    """Spot-check the tractability split Table 1 reports: the PTIME
    procedures answer instantly on inputs where the exponential ones
    need their enumeration budget."""

    def test_cqp_is_cheap_bep_exact_is_not(self):
        import time
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        atoms = ", ".join(f"R(x{i}, x{i + 1})" for i in range(8))
        q = parse_cq(f"Q(x8) :- {atoms}, x0 = 1")
        start = time.perf_counter()
        assert is_covered(q, access)
        cqp_time = time.perf_counter() - start
        assert cqp_time < 0.5  # PTIME syntactic check.
