"""End-to-end CLI tests: analyze / run / discover / batch / bench-service
against a database directory on disk, via ``repro.cli.main``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.storage.io import save_database


@pytest.fixture
def db_dir(accident_db, tmp_path):
    directory = tmp_path / "db"
    save_database(accident_db, directory)
    return str(directory)


Q0 = ("Q0(xa) :- Accident(aid, 'Queens Park', '1/5/2005'), "
      "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)")
UNCOVERED = "Q(x) :- Casualty(cid, aid, cl, x)"


def test_analyze_bounded(db_dir, capsys):
    assert main(["analyze", "--db", db_dir, Q0]) == 0
    out = capsys.readouterr().out
    assert "BEP: yes" in out
    assert "fetch bound" in out


def test_analyze_uncovered_reports_envelopes(db_dir, capsys):
    assert main(["analyze", "--db", db_dir, UNCOVERED]) == 1
    out = capsys.readouterr().out
    assert "upper envelope" in out
    assert "lower envelope" in out


def test_explain_bounded_shows_full_pipeline(db_dir, capsys):
    assert main(["explain", "--db", db_dir, Q0]) == 0
    out = capsys.readouterr().out
    # The four sections: verdict + logical plan, rule trace, physical
    # plan, and the static cost estimate.
    assert "BEP: yes" in out
    assert "logical plan" in out
    assert "optimizer:" in out and "fired rules:" in out
    assert "physical plan" in out
    assert "cost estimate:" in out
    # The rules that must fire on the paper's Q0 join plan.
    assert "product-to-hash-join" in out
    assert "select-into-fetch" in out
    assert "hash-join" in out and "fused-fetch" in out
    # The logical IR's products are gone from the physical plan.
    assert " x " in out.split("optimizer:")[0]
    assert "cross(" not in out.split("physical plan")[1]


def test_explain_is_stable_for_a_fixed_query(db_dir, capsys):
    assert main(["explain", "--db", db_dir, Q0]) == 0
    first = capsys.readouterr().out
    assert main(["explain", "--db", db_dir, Q0]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_explain_uncovered_exits_nonzero(db_dir, capsys):
    assert main(["explain", "--db", db_dir, UNCOVERED]) == 1
    out = capsys.readouterr().out
    assert "BEP: no" in out
    assert "no bounded plan to explain" in out


def test_explain_missing_db_is_actionable(tmp_path, capsys):
    missing = str(tmp_path / "nowhere")
    assert main(["explain", "--db", missing, Q0]) == 2
    assert "no such database directory" in capsys.readouterr().err


def test_run_bounded_matches_expected_answers(db_dir, capsys):
    assert main(["run", "--db", db_dir, Q0]) == 0
    out = capsys.readouterr().out
    assert "bounded plan" in out
    # Queens Park on 1/5/2005 is accident a1 with drivers aged 34, 51.
    assert "(34,)" in out and "(51,)" in out
    assert "2 answer(s)" in out


def test_run_falls_back_to_scan(db_dir, capsys):
    assert main(["run", "--db", db_dir, UNCOVERED]) == 0
    out = capsys.readouterr().out
    assert "falling back to a full scan" in out
    assert "5 answer(s)" in out


def test_run_sharded_backend_same_answers(db_dir, capsys):
    assert main(["run", "--db", db_dir, Q0]) == 0
    memory_out = capsys.readouterr().out
    assert "storage: memory" in memory_out
    assert main(["run", "--db", db_dir, "--backend", "sharded",
                 "--shards", "4", Q0]) == 0
    sharded_out = capsys.readouterr().out
    assert "storage: sharded(shards=4)" in sharded_out
    # Identical answers and identical access accounting on both engines.
    assert "(34,)" in sharded_out and "(51,)" in sharded_out
    assert "2 answer(s)" in sharded_out
    assert memory_out.split("storage: memory\n")[1].splitlines()[0] == \
        sharded_out.split("storage: sharded(shards=4)\n")[1].splitlines()[0]


def test_run_procshard_backend_same_answers(db_dir, capsys):
    assert main(["run", "--db", db_dir, Q0]) == 0
    memory_out = capsys.readouterr().out
    assert main(["run", "--db", db_dir, "--backend", "procshard",
                 "--shard-workers", "2", Q0]) == 0
    out = capsys.readouterr().out
    assert "storage: procshard(workers=2, replicas=0" in out
    assert "(34,)" in out and "(51,)" in out
    assert "2 answer(s)" in out
    # Identical access accounting across process boundaries.
    assert memory_out.split("storage: memory\n")[1].splitlines()[0] == \
        out.split("\n", 1)[1].splitlines()[0]


def test_run_procshard_with_replicas(db_dir, tmp_path, capsys):
    data_dir = str(tmp_path / "durable")
    assert main(["run", "--db", db_dir, "--backend", "procshard",
                 "--shard-workers", "2", "--replicas", "1",
                 "--data-dir", data_dir, Q0]) == 0
    out = capsys.readouterr().out
    assert "replicas=1" in out and "store=disk" in out
    assert "(34,)" in out and "(51,)" in out


def test_run_procshard_replicas_without_data_dir_is_actionable(
        db_dir, capsys):
    assert main(["run", "--db", db_dir, "--backend", "procshard",
                 "--replicas", "1", Q0]) == 2
    assert "--data-dir" in capsys.readouterr().err


def test_run_sharded_shard_threads_flag(db_dir, capsys):
    assert main(["run", "--db", db_dir, "--backend", "sharded",
                 "--shards", "4", "--shard-threads", "2", Q0]) == 0
    out = capsys.readouterr().out
    assert "storage: sharded(shards=4, workers=2)" in out
    assert "2 answer(s)" in out


def test_run_disk_backend_same_answers_and_recovers(db_dir, tmp_path,
                                                    capsys):
    data_dir = str(tmp_path / "durable")
    assert main(["run", "--db", db_dir, "--backend", "disk",
                 "--data-dir", data_dir, Q0]) == 0
    first = capsys.readouterr().out
    assert "storage: disk(" in first
    assert "(34,)" in first and "(51,)" in first
    assert "2 answer(s)" in first
    # Second run recovers the same directory (WAL replay + set-semantics
    # reload) and answers identically.
    assert main(["run", "--db", db_dir, "--backend", "disk",
                 "--data-dir", data_dir, Q0]) == 0
    second = capsys.readouterr().out
    assert "(34,)" in second and "(51,)" in second
    assert "2 answer(s)" in second


def test_run_disk_backend_without_data_dir_is_actionable(db_dir, capsys):
    assert main(["run", "--db", db_dir, "--backend", "disk", Q0]) == 2
    assert "--data-dir" in capsys.readouterr().err


def test_bench_service_disk_backend(db_dir, tmp_path, capsys):
    assert main(["bench-service", "--db", db_dir, "--backend", "disk",
                 "--data-dir", str(tmp_path / "durable"),
                 "--requests", "3", Q0]) == 0
    out = capsys.readouterr().out
    assert "storage: disk(" in out
    assert "2 answer(s)" in out


def test_batch_sharded_backend(db_dir, tmp_path, capsys):
    requests = tmp_path / "requests.json"
    requests.write_text(json.dumps({
        "requests": [
            {"query": "Q(d) :- Accident(aid, d, t), aid = 'a4'"},
        ],
    }))
    assert main(["batch", "--db", db_dir, "--backend", "sharded",
                 str(requests)]) == 0
    out = capsys.readouterr().out
    assert "1 answer(s) [bounded" in out


def test_discover_prints_constraints(db_dir, capsys):
    assert main(["discover", "--db", db_dir]) == 0
    out = capsys.readouterr().out
    assert "constraints (max bound" in out
    assert "Accident(" in out


def test_batch_end_to_end(db_dir, tmp_path, capsys):
    requests = tmp_path / "requests.json"
    requests.write_text(json.dumps({
        "templates": {
            "drivers": ("Q(xa) :- Accident(aid, d, t), "
                        "Casualty(cid, aid, class, vid), "
                        "Vehicle(vid, dri, xa), d = $district, t = $date"),
        },
        "requests": [
            {"template": "drivers",
             "params": {"district": "Queens Park", "date": "1/5/2005"}},
            {"template": "drivers",
             "params": {"district": "Soho", "date": "1/5/2005"}},
            {"query": "Q(d) :- Accident(aid, d, t), aid = 'a4'"},
        ],
    }))
    assert main(["batch", "--db", db_dir, str(requests)]) == 0
    out = capsys.readouterr().out
    assert "2 answer(s) [bounded" in out      # Queens Park drivers
    assert "3 requests (0 errors, 3 bounded)" in out
    assert "latency p50" in out
    assert "hit rate" in out


def test_batch_reports_per_request_errors(db_dir, tmp_path, capsys):
    requests = tmp_path / "requests.json"
    requests.write_text(json.dumps({
        "templates": {"t": "Q(d) :- Accident(aid, d, x), aid = $aid"},
        "requests": [
            {"template": "t", "params": {"wrong_name": 1}},
            {"template": "t", "params": {"aid": "a1"}},
        ],
    }))
    assert main(["batch", "--db", db_dir, str(requests)]) == 1
    out = capsys.readouterr().out
    assert "ERROR" in out and "$wrong_name" in out
    assert "2 requests (1 errors" in out


def test_batch_rejects_malformed_request_file(db_dir, tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["batch", "--db", db_dir, str(bad)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_bench_service_reports_speedup(db_dir, capsys):
    assert main(["bench-service", "--db", db_dir, "--requests", "5",
                 Q0]) == 0
    out = capsys.readouterr().out
    assert "cold (parse + analyze + plan + execute)" in out
    assert "speedup" in out


def test_missing_database_directory_is_actionable(tmp_path, capsys):
    missing = str(tmp_path / "nowhere")
    assert main(["analyze", "--db", missing, "Q(x) :- R(x)"]) == 2
    err = capsys.readouterr().err
    assert "no such database directory" in err


# -- observability flags ------------------------------------------------------


def test_run_trace_tree_spans_sum_to_request_total(db_dir, tmp_path,
                                                   capsys):
    """The acceptance property for --trace: the request root's direct
    children (compile / bep_decision / execute ...) account for its
    total duration within tolerance — no large untraced gap."""
    trace_path = tmp_path / "trace.jsonl"
    assert main(["run", "--db", db_dir, "--trace", str(trace_path),
                 Q0]) == 0
    out = capsys.readouterr().out
    assert f"-> {trace_path}" in out
    assert "request" in out and "compile" in out  # rendered tree

    trees = [json.loads(line)
             for line in trace_path.read_text().splitlines()]
    assert len(trees) == 1
    root = trees[0]
    assert root["name"] == "request"
    stages = [child["name"] for child in root["children"]]
    assert stages[:2] == ["compile", "bep_decision"]
    assert "execute" in stages
    covered = sum(child["duration_ms"] for child in root["children"])
    assert covered <= root["duration_ms"] * 1.001 + 0.01
    assert covered >= root["duration_ms"] * 0.5, \
        f"untraced gap: children {covered}ms of {root['duration_ms']}ms"


def test_run_trace_fallback_has_execute_stage(db_dir, tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    assert main(["run", "--db", db_dir, "--trace", str(trace_path),
                 UNCOVERED]) == 0
    capsys.readouterr()
    root = json.loads(trace_path.read_text().splitlines()[0])
    stages = [child["name"] for child in root["children"]]
    assert "execute" in stages  # the scan fallback is traced too


def test_run_metrics_out_writes_valid_exposition(db_dir, tmp_path,
                                                 capsys):
    from repro.obs import validate_exposition

    metrics_path = tmp_path / "metrics.prom"
    assert main(["run", "--db", db_dir, "--metrics-out",
                 str(metrics_path), Q0]) == 0
    capsys.readouterr()
    text = metrics_path.read_text()
    assert validate_exposition(text, [
        "repro_requests_total", "repro_bounded_requests_total",
        "repro_request_latency_seconds", "repro_db_rows"]) == []
    assert "repro_requests_total 1" in text


def test_bench_service_metrics_out_and_trace(db_dir, tmp_path, capsys):
    from repro.obs import parse_exposition

    metrics_path = tmp_path / "metrics.prom"
    trace_path = tmp_path / "trace.jsonl"
    assert main(["bench-service", "--db", db_dir, "--requests", "4",
                 "--metrics-out", str(metrics_path),
                 "--trace", str(trace_path), Q0]) == 0
    capsys.readouterr()
    families = parse_exposition(metrics_path.read_text())
    # The cache-priming request plus the four measured ones.
    assert families["repro_requests_total"]["samples"][
        "repro_requests_total"] == 5.0
    assert "repro_fetch_cache_hit_rate" in families
    # One root span tree per traced request (prime + 4 warm).
    assert len(trace_path.read_text().splitlines()) == 5


def test_stats_subcommand_prints_exposition(db_dir, capsys):
    assert main(["stats", "--db", db_dir]) == 0
    out = capsys.readouterr().out
    assert "storage: memory" in out
    assert "repro_db_rows" in out


def test_stats_disk_backend_reports_storage_counters(db_dir, tmp_path,
                                                     capsys):
    data_dir = str(tmp_path / "durable")
    # First run materializes the disk directory via the WAL...
    assert main(["run", "--db", db_dir, "--backend", "disk",
                 "--data-dir", data_dir, Q0]) == 0
    capsys.readouterr()
    # ...and stats on a reopened engine shows the recovery counters.
    assert main(["stats", "--db", db_dir, "--backend", "disk",
                 "--data-dir", data_dir]) == 0
    out = capsys.readouterr().out
    assert "repro_storage_recovered_rows_total" in out
    assert "repro_storage_replay_records_total" in out
