"""End-to-end integration: the workflow the paper's conclusion proposes.

"(1) develop and maintain an access schema A for an application;
 (2) for all queries Q: if Q is boundedly evaluable or covered, compute
 exact answers by accessing a bounded amount of data; otherwise compute
 approximate answers using envelopes, or interact with users to get a
 boundedly specialized query."  (Section 6)

This file runs that decision tree over a generated workload against
generated data and checks every branch's promise.
"""

from __future__ import annotations

import pytest

from repro.core import (analyze_coverage, is_boundedly_evaluable,
                        specialize_minimally, upper_envelope)
from repro.engine import (ScanStats, evaluate, execute_plan, static_bounds)
from repro.workload import (AccidentScale, accident_workload_config,
                            extended_access_schema, extended_accidents,
                            extended_schema, generate_workload)


@pytest.fixture(scope="module")
def world():
    db = extended_accidents(AccidentScale(days=15,
                                          max_accidents_per_day=10))
    access = extended_access_schema()
    db.attach_access_schema(access)
    db.check()
    workload = generate_workload(
        60, accident_workload_config(extended_schema()), seed=31)
    return db, access, workload


def test_section6_strategy(world):
    """Every workload query is routed down exactly one branch, and the
    branch's guarantee is verified on the data."""
    db, access, workload = world
    branch_counts = {"bounded": 0, "envelope": 0, "specialize": 0,
                     "scan": 0}
    for q in workload:
        decision = is_boundedly_evaluable(q, access)
        if decision.is_yes:
            branch_counts["bounded"] += 1
            plan = decision.witness["plan"]
            result = execute_plan(plan, db)
            assert result.answers == evaluate(q, db)
            assert result.stats.tuples_fetched <= \
                static_bounds(plan).fetch_bound
            continue
        upper = upper_envelope(q, access)
        if upper.is_yes:
            branch_counts["envelope"] += 1
            envelope = upper.witness
            exact = evaluate(q, db)
            approx = execute_plan(envelope.plan, db).answers
            assert exact <= approx
            if envelope.bound is not None:
                assert len(approx - exact) <= envelope.bound
            continue
        qsp = specialize_minimally(q, access)
        if qsp.is_yes:
            branch_counts["specialize"] += 1
            # Coverage of the specialization is valuation-independent;
            # verified in depth in tests/core/test_specialization.py.
            assert len(qsp.witness) >= 1
            continue
        branch_counts["scan"] += 1

    # The workload genuinely exercises the interesting branches.
    assert branch_counts["bounded"] >= 30
    assert branch_counts["envelope"] + branch_counts["specialize"] >= 5
    # Everything is answerable *somehow*: full-parameterization always
    # remains (here some queries may truly need the scan fallback).
    assert sum(branch_counts.values()) == len(workload)


def test_bounded_plans_agree_with_naive_on_workload(world):
    """Invariant 1 at workload scale: every covered workload query's
    plan output equals the scan-based evaluation."""
    db, access, workload = world
    checked = 0
    for q in workload:
        coverage = analyze_coverage(q, access)
        if not coverage.is_covered:
            continue
        from repro.engine import build_bounded_plan
        plan = build_bounded_plan(coverage)
        result = execute_plan(plan, db)
        assert result.answers == evaluate(coverage.query, db), str(q)
        checked += 1
    assert checked >= 30


def test_access_volume_is_fraction_of_db(world):
    """Covered queries touch a small fraction of the instance."""
    db, access, workload = world
    from repro.engine import build_bounded_plan
    total_fetched = 0
    total_scanned = 0
    for q in workload[:30]:
        coverage = analyze_coverage(q, access)
        if not coverage.is_covered:
            continue
        plan = build_bounded_plan(coverage)
        result = execute_plan(plan, db)
        scan = ScanStats()
        evaluate(coverage.query, db, scan)
        total_fetched += result.stats.tuples_fetched
        total_scanned += scan.tuples_scanned
    assert total_scanned > 0
    assert total_fetched < total_scanned / 2


def test_specialization_round_trip(world):
    """A query needing specialization becomes executable once its
    minimal parameters are instantiated with real data values."""
    db, access, _ = world
    from repro.query import parse_cq
    from repro.query.terms import Const
    q = parse_cq(
        "Q(age) :- Accident(aid, district, date, sev, wea, road), "
        "Casualty(cid, aid, cls, band, vid), "
        "Vehicle(vid, make, drv, age)")
    assert is_boundedly_evaluable(q, access).is_no
    qsp = specialize_minimally(q, access)
    assert qsp
    # Instantiate the chosen parameters with values from the data.
    first_accident = db.relation_tuples("Accident")[0]
    schema_attrs = {"aid": 0, "district": 1, "date": 2, "sev": 3,
                    "wea": 4, "road": 5}
    valuation = {}
    for var in qsp.witness:
        if var.name in schema_attrs:
            valuation[var] = Const(first_accident[schema_attrs[var.name]])
    if len(valuation) < len(qsp.witness):
        pytest.skip("chosen parameters outside the Accident relation")
    specialized = q.specialize(valuation)
    decision = is_boundedly_evaluable(specialized, access)
    assert decision
    result = execute_plan(decision.witness["plan"], db)
    assert result.answers == evaluate(specialized, db)
