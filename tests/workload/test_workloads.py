"""Tests for the workload generators (accidents, random CQs, social)."""

from __future__ import annotations

import random

import pytest

from repro.core import is_covered
from repro.query.normalize import normalize_cq
from repro.workload import (AccidentScale, SocialScale,
                            accident_workload_config, extended_access_schema,
                            extended_accidents, extended_schema,
                            generate_patterns, generate_workload,
                            graph_search_pattern, simple_accidents,
                            social_access_schema, social_graph)


class TestAccidents:
    def test_simple_satisfies_canonical_schema(self):
        db = simple_accidents(AccidentScale(days=12,
                                            max_accidents_per_day=10))
        assert db.satisfies()
        assert db.size() > 50

    def test_reproducible(self):
        scale = AccidentScale(days=5, max_accidents_per_day=5, seed=3)
        a = simple_accidents(scale)
        b = simple_accidents(scale)
        assert sorted(a.relation_tuples("Accident")) == \
            sorted(b.relation_tuples("Accident"))

    def test_scale_controls_size(self):
        small = simple_accidents(AccidentScale(days=4,
                                               max_accidents_per_day=4))
        large = simple_accidents(AccidentScale(days=40,
                                               max_accidents_per_day=10))
        assert large.size() > 3 * small.size()

    def test_extended_satisfies_curated_schema(self):
        db = extended_accidents(AccidentScale(days=10,
                                              max_accidents_per_day=8))
        assert db.satisfies(extended_access_schema())

    def test_mean_two_vehicles(self):
        db = simple_accidents(AccidentScale(days=40,
                                            max_accidents_per_day=20))
        ratio = db.relation_size("Casualty") / db.relation_size("Accident")
        assert 1.2 <= ratio <= 3.2  # "two vehicles on average".


class TestQueryWorkload:
    @pytest.fixture(scope="class")
    def config(self):
        return accident_workload_config(extended_schema())

    def test_queries_are_wellformed(self, config):
        for q in generate_workload(50, config, seed=1):
            normalize_cq(q, config.schema)  # Raises on malformed queries.

    def test_reproducible(self, config):
        a = generate_workload(10, config, seed=5)
        b = generate_workload(10, config, seed=5)
        assert [str(q) for q in a] == [str(q) for q in b]

    def test_coverage_rate_near_paper(self, config):
        access = extended_access_schema()
        workload = generate_workload(300, config, seed=7)
        rate = sum(1 for q in workload if is_covered(q, access)) / 300
        assert 0.60 <= rate <= 0.90  # Paper reports 77%.

    def test_mix_of_verdicts(self, config):
        access = extended_access_schema()
        workload = generate_workload(100, config, seed=2)
        verdicts = {bool(is_covered(q, access)) for q in workload}
        assert verdicts == {True, False}

    def test_join_conditions_connect_atoms(self, config):
        rng = random.Random(0)
        from repro.workload.qgen import random_cq
        for _ in range(30):
            q = random_cq(rng, config)
            if len(q.atoms) > 1:
                relations = {a.relation for a in q.atoms}
                # Multi-atom queries follow the FK edges, which only link
                # Accident-Casualty and Casualty-Vehicle.
                assert relations <= {"Accident", "Casualty", "Vehicle"}


class TestSocialWorkload:
    def test_graph_satisfies_schema(self):
        scale = SocialScale(persons=150, seed=9)
        graph = social_graph(scale)
        assert social_access_schema(scale).satisfied_by(graph)

    def test_lives_in_exactly_one(self):
        scale = SocialScale(persons=60)
        graph = social_graph(scale)
        for person in graph.nodes_by_label("person"):
            assert graph.out_degree(person, "lives_in") == 1

    def test_friendship_symmetric(self):
        graph = social_graph(SocialScale(persons=80))
        for src, label, dst in graph.edges():
            if label == "friend":
                assert graph.has_edge(dst, "friend", src)

    def test_patterns_reference_valid_structure(self):
        scale = SocialScale(persons=100)
        for pattern in generate_patterns(30, scale):
            assert pattern.nodes
            assert pattern.output

    def test_graph_search_pattern_shape(self):
        pattern = graph_search_pattern(("person", 1), "paris", "chess")
        assert len(pattern.constants()) == 3
        assert pattern.output == ("f",)
