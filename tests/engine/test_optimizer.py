"""Unit tests for the optimizer pipeline: lowering, each rewrite rule,
the trace, physical-plan binding, and executor dispatch."""

from __future__ import annotations

import pytest

from repro import (AccessConstraint, AccessSchema, Database, ExecutionError,
                   Schema)
from repro.core import analyze_coverage
from repro.engine import (ColEq, ConstEq, ConstOp, FetchOp, Plan, ProductOp,
                          ProjectOp, RenameOp, SelectOp, UnionOp,
                          build_bounded_plan, build_union_plan, execute_plan,
                          interpret_logical, optimize)
from repro.engine.optimizer import (CrossJoinOp, FusedFetchOp, HashJoinOp,
                                    PhysicalPlan)
from repro.query import parse_cq, parse_ucq
from repro.query.terms import Param
from repro.storage.statistics import TableStatistics


@pytest.fixture
def world():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    r_ab = AccessConstraint("R", ("A",), ("B",), 3)
    s_bc = AccessConstraint("S", ("B",), ("C",), 1)
    aschema = AccessSchema(schema, [r_ab, s_bc])
    db = Database(schema, aschema)
    db.insert_many("R", [(1, 10), (1, 11), (2, 12)])
    db.insert_many("S", [(10, "x"), (11, "y"), (12, "z")])
    return schema, aschema, r_ab, s_bc, db


def bounded_plan(text, aschema):
    coverage = analyze_coverage(parse_cq(text), aschema)
    return build_bounded_plan(coverage)


# -- pipeline basics ----------------------------------------------------------


def test_unoptimized_lowering_matches_logical(world):
    *_, aschema, r_ab, s_bc, db = world
    plan = bounded_plan("Q(z) :- R(x, y), S(y, z), x = 1", aschema)
    direct = optimize(plan, rules=())
    assert isinstance(direct, PhysicalPlan)
    assert execute_plan(direct, db).answers == \
        interpret_logical(plan, db).answers == {("x",), ("y",)}


def test_trace_reports_rules_and_step_counts(world):
    *_, aschema, _, _, db = world
    plan = bounded_plan("Q(z) :- R(x, y), S(y, z), x = 1", aschema)
    physical = optimize(plan)
    trace = physical.trace
    assert trace.logical_steps == len(plan)
    assert trace.physical_steps == len(physical)
    assert len(physical) < len(plan)
    assert "product-to-hash-join" in trace.fired_rules()
    assert "select-into-fetch" in trace.fired_rules()
    assert "optimizer:" in trace.explain()
    assert execute_plan(physical, db).answers == \
        interpret_logical(plan, db).answers


def test_physical_explain_lists_every_step(world):
    *_, aschema, _, _, db = world
    physical = optimize(bounded_plan("Q(y) :- R(x, y), x = 1", aschema),
                        TableStatistics.from_database(db))
    text = physical.explain()
    assert "physical plan" in text
    for index in range(len(physical)):
        assert f"T{index} = " in text
    assert "rows <=" in text  # estimates are annotated


# -- individual rules ---------------------------------------------------------


def test_join_becomes_hash_join_without_products(world):
    *_, aschema, _, _, db = world
    plan = bounded_plan("Q(z) :- R(x, y), S(y, z), x = 1", aschema)
    physical = optimize(plan)
    kinds = [type(op) for op in physical.steps]
    assert HashJoinOp in kinds
    assert CrossJoinOp not in kinds
    assert execute_plan(physical, db).answers == {("x",), ("y",)}


def test_constant_selection_fuses_into_fetch(world):
    *_, aschema, _, _, db = world
    # x = 1 pins the fetch; the verification select lands on the fetch
    # output and must be fused.
    plan = bounded_plan("Q(y) :- R(x, y), x = 1", aschema)
    physical = optimize(plan)
    fused = [op for op in physical.steps if isinstance(op, FusedFetchOp)]
    assert fused
    assert execute_plan(physical, db).answers == {(10,), (11,)}


def test_shared_fetch_is_not_fused(world):
    _, _, r_ab, _, db = world
    # Hand-written plan: the fetch feeds both a select and a union, so
    # fusing the select's condition into it would corrupt the union arm.
    plan = Plan("shared")
    const = plan.add(ConstOp("k", 1))
    fetch = plan.add(FetchOp(const, ("k",), r_ab, ("fa", "fb")))
    selected = plan.add(SelectOp(fetch, (ConstEq("fb", 10),)))
    plan.add(UnionOp((fetch, selected)))
    physical = optimize(plan)
    assert not any(isinstance(op, FusedFetchOp) for op in physical.steps)
    assert execute_plan(physical, db).answers == \
        interpret_logical(plan, db).answers == {(1, 10), (1, 11)}


def test_common_subplan_merges_duplicate_fetches_across_disjuncts(world):
    *_, aschema, _, _, db = world
    union = parse_ucq("Q(y) :- R(x, y), x = 1 ; "
                      "Q(y) :- R(x, y), x = 1, y = 11")
    coverages = [analyze_coverage(d, aschema) for d in union.disjuncts]
    plan = build_union_plan(coverages)
    physical = optimize(plan)
    assert "common-subplan" in physical.trace.fired_rules()
    # Both disjuncts fetch R(A=1); the physical plan runs it once.
    assert len(physical.fetch_ops()) < len(plan.fetch_ops())
    optimized = execute_plan(physical, db)
    reference = interpret_logical(plan, db)
    assert optimized.answers == reference.answers == {(10,), (11,)}
    assert optimized.stats.index_lookups < reference.stats.index_lookups


def test_dead_steps_are_counted(world):
    *_, aschema, _, _, _ = world
    physical = optimize(bounded_plan("Q(y) :- R(x, y), x = 1", aschema))
    firing = {f.rule: f for f in physical.trace.firings}["dead-step"]
    assert firing.fired > 0


def test_join_ordering_builds_on_the_smaller_side(world):
    _, _, r_ab, s_bc, db = world
    # left: bound-3 fetch; right: bound-1 fetch -> default build=right
    # is already optimal.  Swap the sides and the rule must flip it.
    def join_plan(first, second):
        plan = Plan("join")
        ka = plan.add(ConstOp("ka", 1))
        left = plan.add(FetchOp(ka, ("ka",), first, ("la", "lb")))
        kb = plan.add(ConstOp("kb", 10))
        right = plan.add(FetchOp(kb, ("kb",), second, ("rb", "rc")))
        cross = plan.add(ProductOp(left, right))
        plan.add(SelectOp(cross, (ColEq("lb", "rb"),)))
        return plan

    flipped = optimize(join_plan(s_bc, r_ab))  # left bound 1 < right 3
    join = next(op for op in flipped.steps if isinstance(op, HashJoinOp))
    assert join.build == "left"
    kept = optimize(join_plan(r_ab, s_bc))     # right bound 1 < left 3
    join = next(op for op in kept.steps if isinstance(op, HashJoinOp))
    assert join.build == "right"


def test_pruning_reconciles_downstream_renames(world):
    """Regression: narrowing a join input must also narrow a live
    downstream rename-projection that listed the dropped column for an
    output nothing needs (hand-written plan shape; the builder's own
    projections collapse before pruning)."""
    _, _, r_ab, s_bc, db = world
    plan = Plan("handwritten")
    ka = plan.add(ConstOp("ka", 1))
    f1 = plan.add(FetchOp(ka, ("ka",), r_ab, ("a", "b")))
    kb = plan.add(ConstOp("kb", 10))
    f2 = plan.add(FetchOp(kb, ("kb",), s_bc, ("c", "d")))
    cross = plan.add(ProductOp(f1, f2))
    selected = plan.add(SelectOp(cross, (ColEq("b", "c"),)))
    renamed = plan.add(RenameOp(
        selected, (("a", "w"), ("b", "x"), ("c", "y"), ("d", "z"))))
    filtered = plan.add(SelectOp(renamed, (ConstEq("w", 1),)))
    plan.add(ProjectOp(filtered, ("w",)))
    physical = optimize(plan)
    assert execute_plan(physical, db).answers == \
        interpret_logical(plan, db).answers == {(1,)}


def test_projection_pushdown_narrows_join_inputs(world):
    *_, aschema, _, _, db = world
    plan = bounded_plan("Q(z) :- R(x, y), S(y, z), x = 1", aschema)
    physical = optimize(plan)
    assert "projection-pushdown" in physical.trace.fired_rules()
    joins = [op for op in physical.steps if isinstance(op, HashJoinOp)]
    # Every join output is at most as wide as the logical σ(×) pair's.
    assert all(len(op.out_columns) <= 4 for op in joins)


# -- physical-plan binding ----------------------------------------------------


def test_map_constants_binds_const_scans_and_fused_checks(world):
    *_, aschema, _, _, db = world
    template = bounded_plan("Q(y) :- R(x, y), x = $who", aschema)
    physical = optimize(template)
    values = {"who": 1}

    def resolve(value):
        if isinstance(value, Param):
            return values[value.name]
        return value

    bound = physical.map_constants(resolve)
    assert not any(isinstance(v, Param) for v in bound.constant_values())
    assert any(isinstance(v, Param) for v in physical.constant_values())
    assert bound.trace is physical.trace  # shape metadata is shared
    assert execute_plan(bound, db).answers == {(10,), (11,)}


# -- executor dispatch --------------------------------------------------------


def test_executor_rejects_non_plans(world):
    *_, db = world
    with pytest.raises(ExecutionError, match="expected a logical Plan"):
        execute_plan("not a plan", db)


def test_logical_plans_memoize_their_physical_form(world):
    *_, aschema, _, _, db = world
    plan = bounded_plan("Q(y) :- R(x, y), x = 1", aschema)
    execute_plan(plan, db)
    first = plan._physical_cache[1]
    execute_plan(plan, db)
    assert plan._physical_cache[1] is first
