"""Per-plan operator specialization: memoization, template sharing via
``map_constants``, and invalidation when the plan meets a different
database (dictionary) or a changed access schema."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.core import analyze_coverage
from repro.engine import (Executor, LegacyTupleExecutor, build_bounded_plan,
                          execute_plan, interpret_logical, optimize)
from repro.engine.optimizer.specialize import (SpecializedPlan,
                                               specialized_plan)
from repro.query import parse_cq
from repro.query.terms import Param


def build_world(rows_r, rows_s):
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    aschema = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 3),
        AccessConstraint("S", ("B",), ("C",), 2)])
    db = Database(schema, aschema)
    db.insert_many("R", rows_r)
    db.insert_many("S", rows_s)
    return aschema, db


@pytest.fixture
def world():
    return build_world([(1, 10), (1, 11), (2, 12)],
                       [(10, "x"), (11, "y"), (12, "z")])


def bounded_physical(text, aschema):
    coverage = analyze_coverage(parse_cq(text), aschema)
    return optimize(build_bounded_plan(coverage))


class TestMemoization:
    def test_same_plan_and_dictionary_hit_the_memo(self, world):
        aschema, db = world
        physical = bounded_physical("Q(z) :- R(x, y), S(y, z), x = 1",
                                    aschema)
        first = specialized_plan(physical, db.dictionary)
        assert isinstance(first, SpecializedPlan)
        assert specialized_plan(physical, db.dictionary) is first
        assert len(first) == len(physical)

    def test_other_dictionary_respecializes_with_its_codes(self, world):
        aschema, db = world
        # Same rows, inserted in a different order: the same values
        # carry *different* codes in the second database.
        _, other = build_world([(2, 12), (1, 11), (1, 10)],
                               [(12, "z"), (11, "y"), (10, "x")])
        physical = bounded_physical("Q(z) :- R(x, y), S(y, z), x = 1",
                                    aschema)
        first = specialized_plan(physical, db.dictionary)
        second = specialized_plan(physical, other.dictionary)
        assert second is not first
        # The memo is a single slot holding the latest pair.
        assert specialized_plan(physical, other.dictionary) is second
        assert specialized_plan(physical, db.dictionary) is not second
        # Both executions are correct — constants were re-encoded into
        # each database's own code space.
        assert execute_plan(physical, db).answers == {("x",), ("y",)}
        assert execute_plan(physical, other).answers == {("x",), ("y",)}

    def test_bound_plans_share_the_template_program(self, world):
        aschema, db = world
        template = bounded_physical("Q(y) :- R(x, y), x = $who", aschema)
        program = getattr(template, "_spec_program", None)
        if program is None:
            specialized_plan(template.map_constants(
                lambda v: 1 if isinstance(v, Param) else v),
                db.dictionary)
            program = template._spec_program
        for who, expected in [(1, {(10,), (11,)}), (2, {(12,)}),
                              (99, set())]:
            bound = template.map_constants(
                lambda v, who=who: who if isinstance(v, Param) else v)
            assert bound._spec_template is template
            assert execute_plan(bound, db).answers == expected
        # Binding specialized three plans without recompiling a single
        # op shape: the template's program object never changed.
        assert template._spec_program is program

    def test_rebinding_a_bound_plan_keeps_the_original_template(
            self, world):
        aschema, db = world
        template = bounded_physical("Q(y) :- R(x, y), x = $who", aschema)
        bound = template.map_constants(
            lambda v: 1 if isinstance(v, Param) else v)
        rebound = bound.map_constants(lambda v: v)
        assert rebound._spec_template is template


class TestInvalidation:
    def test_access_schema_change_respecializes_recompiled_plans(
            self, world):
        """Changing the access schema recompiles plans (new constraint
        objects); specialization follows the new plan while the
        append-only dictionary keeps every existing code valid."""
        aschema, db = world
        text = "Q(z) :- R(x, y), S(y, z), x = 1"
        physical = bounded_physical(text, aschema)
        spec = specialized_plan(physical, db.dictionary)
        before = len(db.dictionary)

        wider = AccessSchema(db.schema, [
            AccessConstraint("R", ("A",), ("B",), 5),
            AccessConstraint("S", ("B",), ("C",), 2),
            AccessConstraint("S", ("C",), ("B",), 2)])
        db.attach_access_schema(wider)
        # Rebuilding indexes re-encodes rows into the *same* dictionary:
        # append-only, so no code moved and the old spec still answers.
        assert len(db.dictionary) == before
        assert specialized_plan(physical, db.dictionary) is spec
        assert execute_plan(physical, db).answers == {("x",), ("y",)}

        recompiled = bounded_physical(text, wider)
        fresh = specialized_plan(recompiled, db.dictionary)
        assert fresh is not spec
        assert execute_plan(recompiled, db).answers == {("x",), ("y",)}

    def test_program_rebuilds_if_steps_changed_length(self, world):
        aschema, db = world
        physical = bounded_physical("Q(y) :- R(x, y), x = 1", aschema)
        specialized_plan(physical, db.dictionary)
        length, program = physical._spec_program
        # Simulate a stale memo from a differently-shaped template (the
        # guard is the step count, re-checked on every build).
        physical._spec_program = (length + 1, program)
        physical._spec_cache = None
        rebuilt = specialized_plan(physical, db.dictionary)
        assert physical._spec_program[0] == length
        assert execute_plan(physical, db).answers == {(10,), (11,)}
        assert len(rebuilt) == length


class TestColumnarIdentity:
    def test_columnar_matches_legacy_and_oracle(self, world):
        aschema, db = world
        coverage = analyze_coverage(
            parse_cq("Q(z) :- R(x, y), S(y, z), x = 1"), aschema)
        plan = build_bounded_plan(coverage)
        physical = optimize(plan)
        columnar = Executor(db).execute(physical)
        legacy = LegacyTupleExecutor(db).execute(physical)
        oracle = interpret_logical(plan, db)
        assert columnar.answers == legacy.answers == oracle.answers
        assert columnar.stats == legacy.stats
        assert (columnar.stats.tuples_fetched
                <= oracle.stats.tuples_fetched)
