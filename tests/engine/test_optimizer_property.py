"""The optimizer's central property, on generated workloads:

    for random workload CQs (and hand-picked UCQs), the optimized
    physical plan, the unoptimized logical interpretation, and naive
    scan evaluation produce bit-identical answers — and the optimized
    execution stays within the plan's static access certificate.

Plus the columnar plane's twin property on *adversarial value
domains*: with unicode, ``None``, mixed int/str and high-cardinality
join keys flowing through dictionary-encoded columns, the columnar
executor's decoded answers and its full ``AccessStats`` match the
tuple executor and the logical oracle exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.core import analyze_coverage
from repro.engine import (Executor, LegacyTupleExecutor,
                          build_bounded_plan, build_union_plan,
                          execute_plan, interpret_logical, optimize,
                          static_bounds)
from repro.query.ast import CQ
from repro.engine.naive import evaluate
from repro.query import parse_query, parse_ucq
from repro.storage.statistics import TableStatistics
from repro.workload.accidents import (AccidentScale, extended_access_schema,
                                      extended_accidents)
from repro.workload.qgen import accident_workload_config, random_cq

import random

SCALE = AccidentScale(days=12, max_accidents_per_day=6)

# Module-level world, built once: hypothesis draws only the query seed.
DB = extended_accidents(SCALE)
ACCESS = extended_access_schema(DB.schema)
DB.attach_access_schema(ACCESS)
CONFIG = accident_workload_config(DB.schema)
STATISTICS = TableStatistics.from_database(DB)


def check_equivalence(query) -> bool:
    """Returns True when the query was covered (and thus checked).

    Plans come from the PTIME coverage check alone — the property under
    test is the optimizer's, not BEP's, and the full chase/
    satisfiability pipeline is property-tested elsewhere; here it would
    only make run time depend on which uncovered shapes hypothesis
    happens to draw."""
    if isinstance(query, CQ):
        coverage = analyze_coverage(query, ACCESS)
        if not coverage.is_covered:
            return False
        plan = build_bounded_plan(coverage)
    else:
        coverages = [analyze_coverage(d, ACCESS) for d in query.disjuncts]
        if not all(c.is_covered for c in coverages):
            return False
        plan = build_union_plan(coverages)
    physical = optimize(plan, STATISTICS)
    optimized = execute_plan(physical, DB)
    reference = interpret_logical(plan, DB)
    naive = evaluate(query, DB)
    assert optimized.answers == reference.answers == naive
    cost = static_bounds(plan, db_size=DB.size())
    assert optimized.stats.tuples_fetched <= cost.fetch_bound
    assert optimized.stats.tuples_fetched <= reference.stats.tuples_fetched
    return True


@given(seed=st.integers(0, 10 ** 6))
@settings(max_examples=40, deadline=None)
def test_random_workload_queries_agree(seed):
    query = random_cq(random.Random(seed), CONFIG)
    check_equivalence(query)


def test_a_generated_workload_actually_exercises_bounded_plans():
    """Guard against the property trivially passing on uncovered
    queries only: a fixed seed range must yield bounded ones."""
    bounded = sum(
        check_equivalence(random_cq(random.Random(seed), CONFIG))
        for seed in range(40))
    assert bounded >= 5


UNIONS = [
    # Shared sub-plans across disjuncts: common-subplan elimination fires.
    "Q(d) :- Accident(a, d, t, s, w, r), a = 'a1' ; "
    "Q(d) :- Accident(a, d, t, s, w, r), a = 'a2'",
    # Overlapping disjuncts (the second is contained in the first).
    "Q(v) :- Casualty(c, a, cl, b, v), a = 'a3' ; "
    "Q(v) :- Casualty(c, a, cl, b, v), a = 'a3', cl = 'driver'",
]


@pytest.mark.parametrize("text", UNIONS)
def test_union_plans_agree(text):
    query = parse_ucq(text)
    assert check_equivalence(query)


# -- adversarial value domains through the columnar plane ---------------------

#: Join keys and output values designed to break naive encodings:
#: unicode (with combining/astral chars), empty/whitespace strings,
#: ``None``, ints colliding with their string spellings, negative and
#: high-cardinality ints.
adversarial_values = st.one_of(
    st.sampled_from([None, "", " ", "0", "1", "None", "naïve",
                     "☃", "γράμμα", "🦉", "a'b", 0, 1, -1, 10 ** 15]),
    st.text(alphabet="αβγ☃né0 ", max_size=3),
    st.integers(-3, 3),
    st.integers(0, 10 ** 9),
)


def adversarial_world(edges, attrs):
    schema = Schema.from_dict({"Edge": ("SRC", "DST"),
                               "Attr": ("NODE", "VAL")})
    fanout = max([1] + [sum(1 for s, _ in edges if s == src)
                        for src, _ in edges])
    attr_fanout = max([1] + [sum(1 for n, _ in attrs if n == node)
                             for node, _ in attrs])
    aschema = AccessSchema(schema, [
        AccessConstraint("Edge", ("SRC",), ("DST",), fanout),
        AccessConstraint("Attr", ("NODE",), ("VAL",), attr_fanout)])
    db = Database(schema, aschema)
    db.insert_many("Edge", edges)
    db.insert_many("Attr", attrs)
    return db


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_columnar_agrees_on_adversarial_domains(data):
    # Sources are parser-safe keys; everything that *joins* (DST/NODE)
    # or reaches the output (VAL) is adversarial.
    nodes = data.draw(st.lists(adversarial_values, min_size=1,
                               max_size=12, unique=True))
    values = data.draw(st.lists(adversarial_values, min_size=1,
                                max_size=12, unique=True))
    sources = [f"k{i}" for i in range(data.draw(st.integers(1, 4)))]
    edges = data.draw(st.lists(
        st.tuples(st.sampled_from(sources), st.sampled_from(nodes)),
        max_size=30, unique=True))
    attrs = data.draw(st.lists(
        st.tuples(st.sampled_from(nodes), st.sampled_from(values)),
        max_size=30, unique=True))
    db = adversarial_world(edges, attrs)

    # One present key and one absent one (empty fetches must agree too).
    for src in [sources[0], "absent"]:
        query = parse_query(
            f"Q(v) :- Edge(s, d), Attr(d, v), s = '{src}'")
        coverage = analyze_coverage(query, db.access_schema)
        assert coverage.is_covered
        plan = build_bounded_plan(coverage)
        physical = optimize(plan, TableStatistics.from_database(db))

        columnar = Executor(db).execute(physical)
        legacy = LegacyTupleExecutor(db).execute(physical)
        oracle = interpret_logical(plan, db)
        naive = evaluate(query, db)
        assert columnar.answers == legacy.answers == oracle.answers \
            == naive
        # The whole accounting — fetch calls, index lookups, tuples
        # fetched, dedup behavior (max_intermediate) — is unchanged by
        # the columnar representation.
        assert columnar.stats == legacy.stats
        assert (columnar.stats.tuples_fetched
                <= oracle.stats.tuples_fetched)
