"""The optimizer's central property, on generated workloads:

    for random workload CQs (and hand-picked UCQs), the optimized
    physical plan, the unoptimized logical interpretation, and naive
    scan evaluation produce bit-identical answers — and the optimized
    execution stays within the plan's static access certificate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import analyze_coverage
from repro.engine import (build_bounded_plan, build_union_plan,
                          execute_plan, interpret_logical, optimize,
                          static_bounds)
from repro.query.ast import CQ
from repro.engine.naive import evaluate
from repro.query import parse_ucq
from repro.storage.statistics import TableStatistics
from repro.workload.accidents import (AccidentScale, extended_access_schema,
                                      extended_accidents)
from repro.workload.qgen import accident_workload_config, random_cq

import random

SCALE = AccidentScale(days=12, max_accidents_per_day=6)

# Module-level world, built once: hypothesis draws only the query seed.
DB = extended_accidents(SCALE)
ACCESS = extended_access_schema(DB.schema)
DB.attach_access_schema(ACCESS)
CONFIG = accident_workload_config(DB.schema)
STATISTICS = TableStatistics.from_database(DB)


def check_equivalence(query) -> bool:
    """Returns True when the query was covered (and thus checked).

    Plans come from the PTIME coverage check alone — the property under
    test is the optimizer's, not BEP's, and the full chase/
    satisfiability pipeline is property-tested elsewhere; here it would
    only make run time depend on which uncovered shapes hypothesis
    happens to draw."""
    if isinstance(query, CQ):
        coverage = analyze_coverage(query, ACCESS)
        if not coverage.is_covered:
            return False
        plan = build_bounded_plan(coverage)
    else:
        coverages = [analyze_coverage(d, ACCESS) for d in query.disjuncts]
        if not all(c.is_covered for c in coverages):
            return False
        plan = build_union_plan(coverages)
    physical = optimize(plan, STATISTICS)
    optimized = execute_plan(physical, DB)
    reference = interpret_logical(plan, DB)
    naive = evaluate(query, DB)
    assert optimized.answers == reference.answers == naive
    cost = static_bounds(plan, db_size=DB.size())
    assert optimized.stats.tuples_fetched <= cost.fetch_bound
    assert optimized.stats.tuples_fetched <= reference.stats.tuples_fetched
    return True


@given(seed=st.integers(0, 10 ** 6))
@settings(max_examples=40, deadline=None)
def test_random_workload_queries_agree(seed):
    query = random_cq(random.Random(seed), CONFIG)
    check_equivalence(query)


def test_a_generated_workload_actually_exercises_bounded_plans():
    """Guard against the property trivially passing on uncovered
    queries only: a fixed seed range must yield bounded ones."""
    bounded = sum(
        check_equivalence(random_cq(random.Random(seed), CONFIG))
        for seed in range(40))
    assert bounded >= 5


UNIONS = [
    # Shared sub-plans across disjuncts: common-subplan elimination fires.
    "Q(d) :- Accident(a, d, t, s, w, r), a = 'a1' ; "
    "Q(d) :- Accident(a, d, t, s, w, r), a = 'a2'",
    # Overlapping disjuncts (the second is contained in the first).
    "Q(v) :- Casualty(c, a, cl, b, v), a = 'a3' ; "
    "Q(v) :- Casualty(c, a, cl, b, v), a = 'a3', cl = 'driver'",
]


@pytest.mark.parametrize("text", UNIONS)
def test_union_plans_agree(text):
    query = parse_ucq(text)
    assert check_equivalence(query)
