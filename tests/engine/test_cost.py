"""Tests for static cost bounds and certificates (Theorem 3.11's
"determined by Q and A only" guarantee)."""

from __future__ import annotations

import pytest

from repro import (AccessConstraint, AccessSchema, Database, LogCardinality,
                   PlanError, Schema)
from repro.core import analyze_coverage
from repro.engine import (ConstOp, FetchOp, Plan, ProductOp,
                          build_bounded_plan, execute_plan, static_bounds)
from repro.query import parse_cq


@pytest.fixture
def world():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 4),
        AccessConstraint("S", ("B",), ("C",), 5),
    ])
    return schema, access


class TestCertificates:
    def test_chain_bounds_multiply(self, world):
        _, access = world
        q = parse_cq("Q(z) :- R(x, y), S(y, z), x = 1")
        plan = build_bounded_plan(analyze_coverage(q, access))
        cost = static_bounds(plan)
        # Fetches: R-application (1*4), S-application (4*5); both atoms'
        # verifications are subsumed by their applications.
        assert cost.fetch_bound == 4 + 20
        assert cost.output_bound == 20

    def test_union_certificate_sums(self, world):
        from repro.engine import build_union_plan
        _, access = world
        q1 = parse_cq("Q(y) :- R(x, y), x = 1")
        q2 = parse_cq("Q(c) :- S(b, c), b = 2")
        plan = build_union_plan([analyze_coverage(q1, access),
                                 analyze_coverage(q2, access)])
        cost = static_bounds(plan)
        assert cost.output_bound == 4 + 5
        assert cost.fetch_bound == 4 + 5

    def test_empty_plan_zero(self, world):
        from repro.engine import build_empty_plan
        plan = build_empty_plan(2)
        cost = static_bounds(plan)
        assert cost.output_bound == 0
        assert cost.fetch_bound == 0

    def test_nonconstant_requires_db_size(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), LogCardinality())])
        q = parse_cq("Q(y) :- R(x, y), x = 1")
        plan = build_bounded_plan(analyze_coverage(q, access))
        with pytest.raises(PlanError, match="db_size"):
            static_bounds(plan)
        assert static_bounds(plan, db_size=1024).fetch_bound == 10

    def test_per_fetch_breakdown(self, world):
        _, access = world
        q = parse_cq("Q(z) :- R(x, y), S(y, z), x = 1")
        plan = build_bounded_plan(analyze_coverage(q, access))
        cost = static_bounds(plan)
        assert len(cost.per_fetch) == len(plan.fetch_ops())
        assert sum(f.tuples for f in cost.per_fetch) == cost.fetch_bound


class TestGenericFallback:
    """Plans without certificates get the (loose) abstract interpretation."""

    def test_fetch_bound(self, world):
        _, access = world
        constraint = access.constraints[0]
        plan = Plan()
        c = plan.add(ConstOp("k", 1))
        plan.add(FetchOp(c, ("k",), constraint, ("fa", "fb")))
        cost = static_bounds(plan)
        assert cost.fetch_bound == 4
        assert cost.output_bound == 4

    def test_product_multiplies(self, world):
        _, access = world
        plan = Plan()
        a = plan.add(ConstOp("k", 1))
        b = plan.add(ConstOp("j", 2))
        plan.add(ProductOp(a, b))
        assert static_bounds(plan).output_bound == 1


class TestGuaranteeHolds:
    """The certificate is an over-approximation on real executions."""

    def test_random_instances(self, world):
        import random
        schema, access = world
        q = parse_cq("Q(z) :- R(x, y), S(y, z), x = 1")
        plan = build_bounded_plan(analyze_coverage(q, access))
        cost = static_bounds(plan)
        rng = random.Random(0)
        for _ in range(10):
            db = Database(schema, access)
            for _ in range(40):
                db.insert("R", (rng.randint(0, 3), rng.randint(0, 5)))
                db.insert("S", (rng.randint(0, 5), rng.randint(0, 9)))
                if not db.satisfies():
                    break
            db = _repair(db, schema, access)
            result = execute_plan(plan, db)
            assert result.stats.tuples_fetched <= cost.fetch_bound
            assert len(result.answers) <= cost.output_bound


def _repair(db, schema, access):
    """Drop rows until the instance satisfies the access schema."""
    fresh = Database(schema, access)
    for name in schema.relation_names():
        for row in db.relation_tuples(name):
            fresh.insert(name, row)
            if not fresh.satisfies():
                rebuilt = Database(schema, access)
                for other in schema.relation_names():
                    keep = [t for t in fresh.relation_tuples(other)
                            if not (other == name and t == row)]
                    rebuilt.insert_many(other, keep)
                fresh = rebuilt
    assert fresh.satisfies()
    return fresh
