"""Tests for the bounded-plan builder, including the central property:

    for every covered CQ and every instance satisfying A,
    executing the bounded plan == naive evaluation,
    and tuples fetched <= the plan's static certificate bound.

This is invariant 1/2 of DESIGN.md Section 6.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (AccessConstraint, AccessSchema, Database, PlanError,
                   Schema)
from repro.core import analyze_coverage
from repro.engine import (build_bounded_plan, build_empty_plan,
                          build_union_plan, evaluate, execute_plan,
                          static_bounds)
from repro.query import parse_cq, parse_ucq


# ---------------------------------------------------------------------------
# A reusable two-relation world: R(A, B), S(B, C).
# ---------------------------------------------------------------------------

def make_world():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    aschema = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 3),
        AccessConstraint("R", ("B",), ("A",), 3),
        AccessConstraint("S", ("B",), ("C",), 3),
        AccessConstraint("S", ("C",), ("B",), 3),
    ])
    return schema, aschema


def repaired_db(schema, aschema, r_rows, s_rows) -> Database:
    """Insert rows, skipping any that would break a constraint.

    The result satisfies ``A`` by construction, so properties quantify
    over a rich family of legal instances.
    """
    db = Database(schema, aschema)
    for relation, rows in (("R", r_rows), ("S", s_rows)):
        for row in rows:
            db.insert(relation, row)
            if not db.satisfies():
                # Remove the offending row by rebuilding without it.
                kept_r = [t for t in db.relation_tuples("R")
                          if not (relation == "R" and t == tuple(row))]
                kept_s = [t for t in db.relation_tuples("S")
                          if not (relation == "S" and t == tuple(row))]
                db = Database(schema, aschema)
                db.insert_many("R", kept_r)
                db.insert_many("S", kept_s)
    assert db.satisfies()
    return db


COVERED_QUERIES = [
    "Q(y) :- R(x, y), x = 1",
    "Q(z) :- R(x, y), S(y, z), x = 1",
    "Q(x, z) :- R(x, y), S(y, z), x = 2",
    "Q(y) :- R(x, y), R(x2, y2), x = 1, x2 = 2, y = y2",
    "Q(x) :- R(x, y), y = 1",
    "Q() :- R(x, y), x = 1",
    "Q(y, w) :- R(x, y), S(y, w), S(w2, c), x = 0, w2 = w",
    "Q(u) :- R(x, y), x = 1, u = 9",
    "Q(x, x) :- R(x, y), y = 2",
]

values = st.integers(0, 3)
r_rows = st.lists(st.tuples(values, values), max_size=14)
s_rows = st.lists(st.tuples(values, values), max_size=14)


@pytest.mark.parametrize("text", COVERED_QUERIES)
def test_queries_are_covered(text):
    schema, aschema = make_world()
    q = parse_cq(text)
    coverage = analyze_coverage(q, aschema)
    assert coverage.is_covered, coverage.decision().reason


@pytest.mark.parametrize("text", COVERED_QUERIES)
@given(r=r_rows, s=s_rows)
@settings(max_examples=25, deadline=None)
def test_plan_equals_naive(text, r, s):
    schema, aschema = make_world()
    db = repaired_db(schema, aschema, r, s)
    q = parse_cq(text)
    coverage = analyze_coverage(q, aschema)
    plan = build_bounded_plan(coverage)
    result = execute_plan(plan, db)
    assert result.answers == evaluate(coverage.query, db)


@pytest.mark.parametrize("text", COVERED_QUERIES)
@given(r=r_rows, s=s_rows)
@settings(max_examples=15, deadline=None)
def test_fetch_within_certificate(text, r, s):
    schema, aschema = make_world()
    db = repaired_db(schema, aschema, r, s)
    q = parse_cq(text)
    coverage = analyze_coverage(q, aschema)
    plan = build_bounded_plan(coverage)
    cost = static_bounds(plan)
    result = execute_plan(plan, db)
    assert result.stats.tuples_fetched <= cost.fetch_bound
    assert len(result.answers) <= cost.output_bound


class TestBuilderStructure:
    def test_uncovered_query_rejected(self):
        schema, aschema = make_world()
        q = parse_cq("Q(x, y) :- R(x, y)")  # Nothing pins x.
        coverage = analyze_coverage(q, aschema)
        with pytest.raises(PlanError, match="not covered"):
            build_bounded_plan(coverage)

    def test_classically_unsat_gets_empty_plan(self):
        schema, aschema = make_world()
        q = parse_cq("Q(x) :- R(x, y), x = 1, x = 2")
        coverage = analyze_coverage(q, aschema)
        assert coverage.is_covered  # Data-independent after conflict.
        plan = build_bounded_plan(coverage)
        db = Database(schema, aschema)
        db.insert("R", (1, 2))
        assert execute_plan(plan, db).answers == set()

    def test_plan_is_cq_fragment(self, accident_access, q0):
        coverage = analyze_coverage(q0, accident_access)
        plan = build_bounded_plan(coverage)
        assert plan.language_class() == "CQ"
        plan.check_bounded_under(accident_access)

    def test_plan_has_certificate(self, accident_access, q0):
        coverage = analyze_coverage(q0, accident_access)
        plan = build_bounded_plan(coverage)
        cost = static_bounds(plan)
        # Example 1.1's arithmetic: psi1 once, the psi3 verification,
        # then psi2 and psi4 expansions.
        assert cost.fetch_bound == 610 + 610 + 610 * 192 + 610 * 192

    def test_union_plan(self):
        schema, aschema = make_world()
        u = parse_ucq("Q(y) :- R(x, y), x = 1 ; Q(y) :- S(z, y), z = 0")
        coverages = [analyze_coverage(d, aschema) for d in u.disjuncts]
        plan = build_union_plan(coverages)
        assert plan.language_class() == "UCQ"
        db = Database(schema, aschema)
        db.insert_many("R", [(1, 5), (2, 6)])
        db.insert_many("S", [(0, 7)])
        assert execute_plan(plan, db).answers == {(5,), (7,)}

    def test_union_plan_needs_disjuncts(self):
        with pytest.raises(PlanError):
            build_union_plan([])

    def test_empty_plan(self):
        schema, aschema = make_world()
        plan = build_empty_plan(2)
        db = Database(schema, aschema)
        assert execute_plan(plan, db).answers == set()

    def test_example11_plan_accesses_little(self, accident_access,
                                            accident_db, q0):
        coverage = analyze_coverage(q0, accident_access)
        plan = build_bounded_plan(coverage)
        result = execute_plan(plan, accident_db)
        assert result.answers == {(34,), (51,)}
        # Far below both the database size and the certificate.
        assert result.stats.tuples_fetched <= 12
