"""The columnar data plane's building blocks: dictionary round-trips,
integer columns, and encoded batches."""

from __future__ import annotations

import threading
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.columns import Batch, column_index, deduped_batch
from repro.errors import ExecutionError
from repro.storage.encoding import (COLUMN_TYPECODE, ValueDictionary,
                                    extend_column, int_column,
                                    readonly_view)

ADVERSARIAL = [
    "plain", "", "naïve", "☃ snow", "0", "None", 0, -1, 7, 10 ** 12,
    None, ("a", 1), 3.5,
]

#: Adversarial single values: unicode, None-likes, ints colliding with
#: their string spellings, high-cardinality ints, floats.
adversarial_values = st.one_of(
    st.sampled_from(ADVERSARIAL),
    st.text(alphabet="αβγ☃né '\"\\", max_size=4),
    st.integers(-5, 5),
    st.integers(0, 10 ** 9),
)


class TestValueDictionary:
    def test_encode_is_stable_and_decode_inverts(self):
        dictionary = ValueDictionary()
        codes = [dictionary.encode(value) for value in ADVERSARIAL]
        assert codes == [dictionary.encode(value)
                         for value in ADVERSARIAL]
        assert [dictionary.decode(code) for code in codes] == ADVERSARIAL
        assert len(dictionary) == len(ADVERSARIAL)
        assert "naïve" in dictionary and "missing" not in dictionary

    def test_distinct_values_get_distinct_codes(self):
        # '0' vs 0 vs 0.0-free ints, '' vs None — the classic traps.
        dictionary = ValueDictionary()
        codes = {dictionary.encode(value)
                 for value in ["0", 0, "", None, "None"]}
        assert len(codes) == 5

    def test_encode_row_matches_per_value_encode(self):
        dictionary = ValueDictionary()
        row = ("a", None, 3, "a")
        assert dictionary.encode_row(row) == tuple(
            dictionary.encode(value) for value in row)

    def test_decode_rows_round_trips_columns(self):
        dictionary = ValueDictionary()
        rows = [("x", 1), ("y", None), ("x", 1), ("☃", "1")]
        coded = [dictionary.encode_row(row) for row in rows]
        cols = [int_column(column) for column in zip(*coded)]
        assert dictionary.decode_rows(cols, len(rows)) == set(rows)

    def test_decode_rows_zero_width(self):
        dictionary = ValueDictionary()
        assert dictionary.decode_rows([], 1) == {()}
        assert dictionary.decode_rows([], 0) == set()

    @given(values=st.lists(adversarial_values, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, values):
        dictionary = ValueDictionary()
        codes = [dictionary.encode(value) for value in values]
        decoded = [dictionary.decode(code) for code in codes]
        assert decoded == values
        # Code equality must mean value equality, database-wide.
        for value, code in zip(values, codes):
            assert dictionary.encode(value) == code

    def test_concurrent_interning_agrees(self):
        dictionary = ValueDictionary()
        values = [f"v{i % 50}" for i in range(500)]
        results: list[list[int]] = []

        def intern():
            results.append([dictionary.encode(value)
                            for value in values])

        threads = [threading.Thread(target=intern) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(dictionary) == 50
        assert all(result == results[0] for result in results)


class TestColumns:
    def test_int_column_builds_signed_64bit_arrays(self):
        column = int_column([1, 2, 3])
        assert isinstance(column, array)
        assert column.typecode == COLUMN_TYPECODE
        assert list(column) == [1, 2, 3]

    def test_extend_column_accepts_arrays_memoryviews_and_lists(self):
        out = int_column([1])
        extend_column(out, int_column([2, 3]))
        extend_column(out, readonly_view(int_column([4])))
        extend_column(out, [5, 6])
        assert list(out) == [1, 2, 3, 4, 5, 6]

    def test_readonly_view_rejects_writes(self):
        view = readonly_view(int_column([1, 2]))
        assert view.readonly
        with pytest.raises(TypeError):
            view[0] = 9


class TestBatch:
    def test_rows_and_len(self):
        batch = Batch(("a", "b"), [[1, 2], [3, 4]], 2, True)
        assert batch.rows() == {(1, 3), (2, 4)}
        assert len(batch) == 2

    def test_zero_width_rows(self):
        assert Batch((), [], 1, True).rows() == {()}
        assert Batch((), [], 0, True).rows() == set()

    def test_deduped_batch_single_column_keeps_first_seen_order(self):
        batch = deduped_batch(("a",), [[3, 1, 3, 2, 1]], 5)
        assert batch.cols == [[3, 1, 2]]
        assert batch.length == 3 and batch.distinct

    def test_deduped_batch_multi_column(self):
        batch = deduped_batch(("a", "b"),
                              [[1, 1, 2, 1], [9, 9, 9, 8]], 4)
        assert batch.rows() == {(1, 9), (2, 9), (1, 8)}
        assert batch.length == 3

    def test_deduped_batch_empty_and_zero_width(self):
        empty = deduped_batch(("a",), [[]], 0)
        assert empty.length == 0 and empty.cols == [[]]
        unit = deduped_batch((), [], 5)
        assert unit.length == 1 and unit.rows() == {()}

    def test_column_index_resolves_and_raises(self):
        assert column_index(("a", "b"), "b") == 1
        with pytest.raises(ExecutionError):
            column_index(("a", "b"), "c")
