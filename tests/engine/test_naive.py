"""Unit tests for the naive (scan-based) evaluator — the reference semantics."""

from __future__ import annotations

import pytest

from repro import Database, Schema
from repro.engine import ScanStats, evaluate, evaluate_cq, evaluate_fo
from repro.query import parse_cq, parse_query, parse_ucq


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("A",)})
    database = Database(schema)
    database.insert_many("R", [(1, 2), (2, 3), (3, 3), (1, 1)])
    database.insert_many("S", [(2,), (3,)])
    return database


class TestCQEvaluation:
    def test_single_atom(self, db):
        q = parse_cq("Q(x, y) :- R(x, y)")
        assert evaluate(q, db) == {(1, 2), (2, 3), (3, 3), (1, 1)}

    def test_join(self, db):
        q = parse_cq("Q(x, z) :- R(x, y), R(y, z)")
        assert evaluate(q, db) == {(1, 3), (2, 3), (3, 3), (1, 2), (1, 1)}

    def test_equality_filter(self, db):
        q = parse_cq("Q(x) :- R(x, y), y = 3")
        assert evaluate(q, db) == {(2,), (3,)}

    def test_var_var_equality(self, db):
        q = parse_cq("Q(x) :- R(x, y), x = y")
        assert evaluate(q, db) == {(1,), (3,)}

    def test_inline_constant(self, db):
        q = parse_cq("Q(x) :- R(x, 3)")
        assert evaluate(q, db) == {(2,), (3,)}

    def test_repeated_var_in_atom(self, db):
        q = parse_cq("Q(x) :- R(x, x)")
        assert evaluate(q, db) == {(1,), (3,)}

    def test_cross_relation_join(self, db):
        q = parse_cq("Q(x) :- R(x, y), S(y)")
        assert evaluate(q, db) == {(1,), (2,), (3,)}

    def test_boolean_true(self, db):
        q = parse_cq("Q() :- R(x, y), x = 1")
        assert evaluate(q, db) == {()}

    def test_boolean_false(self, db):
        q = parse_cq("Q() :- R(x, y), x = 99")
        assert evaluate(q, db) == set()

    def test_classically_unsat_is_empty(self, db):
        q = parse_cq("Q(x) :- R(x, y), y = 1, y = 2")
        assert evaluate(q, db) == set()

    def test_constant_head_var(self, db):
        q = parse_cq("Q(u) :- R(x, y), u = 7")
        assert evaluate(q, db) == {(7,)}

    def test_constant_head_var_empty_when_body_fails(self, db):
        q = parse_cq("Q(u) :- R(x, y), x = 99, u = 7")
        assert evaluate(q, db) == set()

    def test_repeated_head_var(self, db):
        q = parse_cq("Q(x, x) :- S(x)")
        assert evaluate(q, db) == {(2, 2), (3, 3)}

    def test_scan_stats(self, db):
        stats = ScanStats()
        evaluate_cq(parse_cq("Q(x) :- R(x, y), S(y)"), db, stats)
        assert stats.tuples_scanned == db.size()
        assert stats.relations_scanned == 2


class TestUCQEvaluation:
    def test_union(self, db):
        u = parse_ucq("Q(x) :- R(x, y), y = 1 ; Q(x) :- S(x)")
        assert evaluate(u, db) == {(1,), (2,), (3,)}


class TestPositiveEvaluation:
    def test_or_in_formula(self, db):
        q = parse_query("Q(x) := EXISTS y. (R(x, y) AND (y = 1 OR y = 2))")
        assert evaluate(q, db) == {(1,)}


class TestFOEvaluation:
    def test_negation(self, db):
        q = parse_query("Q(x) := S(x) AND NOT R(x, x)")
        assert evaluate(q, db) == {(2,)}

    def test_forall(self, db):
        # x such that every R-successor of x is in S.
        q = parse_query("Q(x) := S(x) AND FORALL y. (NOT R(x, y) OR S(y))")
        assert evaluate(q, db) == {(2,), (3,)}

    def test_fo_matches_cq_semantics(self, db):
        cq = parse_cq("Q(x) :- R(x, y), S(y)")
        fo = parse_query("Q(x) := EXISTS y. (R(x, y) AND S(y))")
        assert evaluate_fo(fo, db) == evaluate(cq, db)

    def test_exists_shortcircuit(self, db):
        q = parse_query("Q() := EXISTS x. S(x)")
        assert evaluate(q, db) == {()}

    def test_active_domain_includes_query_constants(self):
        schema = Schema.from_dict({"S": ("A",)})
        empty = Database(schema)
        q = parse_query("Q(x) := x = 5 AND NOT S(x)")
        assert evaluate(q, empty) == {(5,)}
