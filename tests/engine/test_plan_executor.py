"""Unit tests for plan structures and the accounting executor."""

from __future__ import annotations

import pytest

from repro import (AccessConstraint, AccessSchema, Database, PlanError,
                   Schema)
from repro.engine import (ColEq, ConstEq, ConstOp, DiffOp, EmptyOp, FetchOp,
                          Plan, ProductOp, ProjectOp, RenameOp, SelectOp,
                          UnionOp, UnitOp, execute_plan)


@pytest.fixture
def setting():
    schema = Schema.from_dict({"R": ("A", "B")})
    constraint = AccessConstraint("R", ("A",), ("B",), 3)
    aschema = AccessSchema(schema, [constraint])
    db = Database(schema, aschema)
    db.insert_many("R", [(1, "a"), (1, "b"), (2, "c")])
    return schema, aschema, constraint, db


class TestPlanConstruction:
    def test_bad_source_index(self):
        plan = Plan()
        with pytest.raises(PlanError, match="references step"):
            plan.add(ProjectOp(0, ()))

    def test_fetch_column_validation(self, setting):
        _, _, constraint, _ = setting
        plan = Plan()
        unit = plan.add(UnitOp())
        with pytest.raises(PlanError, match="missing from source"):
            plan.add(FetchOp(unit, ("nope",), constraint, ("a", "b")))

    def test_fetch_arity_validation(self, setting):
        _, _, constraint, _ = setting
        plan = Plan()
        c = plan.add(ConstOp("k", 1))
        with pytest.raises(PlanError, match="must output"):
            plan.add(FetchOp(c, ("k",), constraint, ("only-one",)))

    def test_duplicate_columns_rejected_in_product(self):
        plan = Plan()
        a = plan.add(ConstOp("k", 1))
        b = plan.add(ConstOp("k", 2))
        with pytest.raises(PlanError, match="duplicate"):
            plan.add(ProductOp(a, b))

    def test_union_arity_check(self):
        plan = Plan()
        a = plan.add(ConstOp("k", 1))
        u = plan.add(UnitOp())
        with pytest.raises(PlanError, match="arity"):
            plan.add(UnionOp((a, u)))

    def test_language_class(self, setting):
        _, _, constraint, _ = setting
        plan = Plan()
        a = plan.add(ConstOp("k", 1))
        assert plan.language_class() == "CQ"
        b = plan.add(ConstOp("j", 2))
        plan.add(UnionOp((a, b)))
        assert plan.language_class() == "UCQ"
        plan.add(ConstOp("m", 3))
        plan.add(UnionOp((0, 1)))
        assert plan.language_class() == "EFO+"
        plan.add(DiffOp(0, 1))
        assert plan.language_class() == "FO"

    def test_check_bounded_under(self, setting):
        schema, aschema, constraint, _ = setting
        plan = Plan()
        c = plan.add(ConstOp("k", 1))
        plan.add(FetchOp(c, ("k",), constraint, ("fa", "fb")))
        plan.check_bounded_under(aschema)  # Does not raise.
        foreign = AccessConstraint("R", ("B",), ("A",), 3)
        plan2 = Plan()
        c2 = plan2.add(ConstOp("k", "a"))
        plan2.add(FetchOp(c2, ("k",), foreign, ("fb", "fa")))
        with pytest.raises(PlanError, match="not backed"):
            plan2.check_bounded_under(aschema)


class TestExecutor:
    def test_unit_and_const(self, setting):
        *_, db = setting
        plan = Plan()
        plan.add(UnitOp())
        assert execute_plan(plan, db).answers == {()}
        plan2 = Plan()
        plan2.add(ConstOp("k", 42))
        assert execute_plan(plan2, db).answers == {(42,)}

    def test_empty(self, setting):
        *_, db = setting
        plan = Plan()
        plan.add(EmptyOp(("a", "b")))
        result = execute_plan(plan, db)
        assert result.answers == set()
        assert not result.boolean

    def test_fetch_counts_access(self, setting):
        _, _, constraint, db = setting
        plan = Plan()
        c = plan.add(ConstOp("k", 1))
        plan.add(FetchOp(c, ("k",), constraint, ("fa", "fb")))
        result = execute_plan(plan, db)
        assert result.answers == {(1, "a"), (1, "b")}
        assert result.stats.fetch_calls == 1
        assert result.stats.index_lookups == 1
        assert result.stats.tuples_fetched == 2

    def test_fetch_distinct_x_values(self, setting):
        _, _, constraint, db = setting
        plan = Plan()
        a = plan.add(ConstOp("k", 1))
        b = plan.add(ConstOp("k", 2))
        u = plan.add(UnionOp((a, b)))
        plan.add(FetchOp(u, ("k",), constraint, ("fa", "fb")))
        result = execute_plan(plan, db)
        assert result.stats.index_lookups == 2
        assert result.stats.tuples_fetched == 3

    def test_project_select_product(self, setting):
        _, _, constraint, db = setting
        plan = Plan()
        c = plan.add(ConstOp("k", 1))
        f = plan.add(FetchOp(c, ("k",), constraint, ("fa", "fb")))
        j = plan.add(ProductOp(c, f))
        s = plan.add(SelectOp(j, (ColEq("k", "fa"), ConstEq("fb", "a"))))
        plan.add(ProjectOp(s, ("fb",), ("out",)))
        result = execute_plan(plan, db)
        assert result.answers == {("a",)}

    def test_rename(self, setting):
        *_, db = setting
        plan = Plan()
        c = plan.add(ConstOp("k", 1))
        plan.add(RenameOp(c, (("k", "renamed"),)))
        result = execute_plan(plan, db)
        assert result.table.columns == ("renamed",)

    def test_diff(self, setting):
        *_, db = setting
        plan = Plan()
        a = plan.add(ConstOp("k", 1))
        b = plan.add(ConstOp("k", 1))
        plan.add(DiffOp(a, b))
        assert execute_plan(plan, db).answers == set()

    def test_projection_dedupes(self, setting):
        _, _, constraint, db = setting
        plan = Plan()
        c = plan.add(ConstOp("k", 1))
        f = plan.add(FetchOp(c, ("k",), constraint, ("fa", "fb")))
        plan.add(ProjectOp(f, ("fa",)))
        assert execute_plan(plan, db).answers == {(1,)}

    def test_empty_plan_rejected(self, setting):
        *_, db = setting
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError):
            execute_plan(Plan(), db)

    def test_max_intermediate_tracked(self, setting):
        _, _, constraint, db = setting
        plan = Plan()
        c = plan.add(ConstOp("k", 1))
        plan.add(FetchOp(c, ("k",), constraint, ("fa", "fb")))
        result = execute_plan(plan, db)
        assert result.stats.max_intermediate == 2
