"""Property tests for UCQ/∃FO+ bounded plans (Lemma 3.6's constructive
side): union plans agree with naive union evaluation and stay within
the UCQ plan fragment and their summed certificates."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.core import analyze_coverage, is_boundedly_evaluable
from repro.engine import (build_union_plan, evaluate, execute_plan,
                          static_bounds)
from repro.query import parse_query, parse_ucq


def make_world():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    aschema = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 3),
        AccessConstraint("S", ("B",), ("C",), 3),
    ])
    return schema, aschema


UNIONS = [
    "Q(y) :- R(x, y), x = 0 ; Q(y) :- R(x, y), x = 1",
    "Q(y) :- R(x, y), x = 0 ; Q(c) :- S(b, c), b = 2",
    "Q(z) :- R(x, y), S(y, z), x = 1 ; Q(z) :- S(y, z), y = 0",
    "Q(y) :- R(x, y), x = 0 ; Q(y) :- R(x, y), x = 0, y = 1",
]

values = st.integers(0, 3)
r_rows = st.lists(st.tuples(values, values), max_size=12)
s_rows = st.lists(st.tuples(values, values), max_size=12)


def repaired_db(schema, aschema, r, s):
    db = Database(schema, aschema)
    for relation, rows in (("R", r), ("S", s)):
        for row in rows:
            db.insert(relation, row)
            if not db.satisfies():
                rebuilt = Database(schema, aschema)
                for name in ("R", "S"):
                    keep = [t for t in db.relation_tuples(name)
                            if not (name == relation and t == tuple(row))]
                    rebuilt.insert_many(name, keep)
                db = rebuilt
    return db


@pytest.mark.parametrize("text", UNIONS)
@given(r=r_rows, s=s_rows)
@settings(max_examples=20, deadline=None)
def test_union_plan_equals_naive(text, r, s):
    schema, aschema = make_world()
    db = repaired_db(schema, aschema, r, s)
    union = parse_ucq(text)
    coverages = [analyze_coverage(d, aschema) for d in union.disjuncts]
    assert all(c.is_covered for c in coverages)
    plan = build_union_plan(coverages)
    assert plan.language_class() in ("CQ", "UCQ")
    result = execute_plan(plan, db)
    assert result.answers == evaluate(union, db)
    cost = static_bounds(plan)
    assert result.stats.tuples_fetched <= cost.fetch_bound
    assert len(result.answers) <= cost.output_bound


@given(r=r_rows, s=s_rows)
@settings(max_examples=20, deadline=None)
def test_positive_query_plan(r, s):
    """∃FO+ route: BEP on a formula query yields a correct union plan."""
    schema, aschema = make_world()
    db = repaired_db(schema, aschema, r, s)
    q = parse_query(
        "Q(y) := EXISTS x. ((R(x, y) AND x = 0) OR (R(x, y) AND x = 1))")
    decision = is_boundedly_evaluable(q, aschema)
    assert decision
    result = execute_plan(decision.witness["plan"], db)
    assert result.answers == evaluate(q, db)


@given(r=r_rows, s=s_rows)
@settings(max_examples=20, deadline=None)
def test_subsumed_disjunct_union(r, s):
    """The Example 3.5 pattern at the plan level: the union plan built
    from covered disjuncts only still answers the full UCQ."""
    schema = Schema.from_dict({"Rp": ("A", "B", "C")})
    aschema = AccessSchema(schema, [
        AccessConstraint("Rp", ("A",), ("B",), 4)])
    db = Database(schema, aschema)
    for a, b in zip(r, s):
        row = (a[0], a[1], b[0])
        db.insert("Rp", row)
        if not db.satisfies():
            rebuilt = Database(schema, aschema)
            rebuilt.insert_many("Rp", [t for t in db.relation_tuples("Rp")
                                       if t != row])
            db = rebuilt
    union = parse_ucq("Q(y) :- Rp(x, y, z), x = 1 ; "
                      "Q(y) :- Rp(x, y, z), x = 1, z = y")
    decision = is_boundedly_evaluable(union, aschema)
    assert decision
    result = execute_plan(decision.witness["plan"], db)
    assert result.answers == evaluate(union, db)
