"""Approximate query answering with envelopes (Section 4, Example 4.1).

When a query is not boundedly evaluable and cannot be specialized,
envelopes trade exactness for bounded access with a *constant* accuracy
guarantee: ``Ql(D) ⊆ Q(D) ⊆ Qu(D)`` with ``|Qu(D) − Q(D)| ≤ Nu`` and
``|Q(D) − Ql(D)| ≤ Nl`` on every instance satisfying the access schema.

Run:  python examples/approximate_answers.py
"""

import random

from repro import AccessConstraint, AccessSchema, Database, Schema, parse_cq
from repro.core import is_boundedly_evaluable, lower_envelope, upper_envelope
from repro.engine import evaluate, execute_plan


def build_instance(schema, access, n_rows: int, seed: int) -> Database:
    db = Database(schema, access)
    rng = random.Random(seed)
    fanout = {}
    values = list(range(1, n_rows))
    while db.size() < n_rows:
        a, b = rng.choice(values), rng.choice(values)
        group = fanout.setdefault(a, set())
        if b in group or len(group) >= 3:
            continue
        group.add(b)
        db.insert("R", (a, b))
    db.check()
    return db


def main() -> None:
    schema = Schema.from_dict({"R": ("A", "B")})
    access = AccessSchema(schema, [AccessConstraint("R", ("A",), ("B",), 3)])
    q1 = parse_cq("Q1(x) :- R(w, x), R(y, w), R(x, z), w = 1")

    print(f"query:  {q1}")
    print(f"access: {access}")
    decision = is_boundedly_evaluable(q1, access)
    print(f"BEP: {decision.verdict} — {decision.reason}")
    print()

    upper = upper_envelope(q1, access).witness
    lower = lower_envelope(q1, access, k=2).witness
    print(f"upper envelope: {upper.query}   (Nu = {upper.bound})")
    print(f"lower envelope: {lower.query}   (Nl = {lower.bound})")
    print()

    print(f"{'instance':>8}  {'|Ql|':>5}  {'|Q|':>5}  {'|Qu|':>5}  "
          f"{'under':>5}  {'over':>5}")
    for seed in range(5):
        db = build_instance(schema, access, 80, seed)
        exact = evaluate(q1, db)
        lower_answers = execute_plan(lower.plan, db).answers
        upper_answers = execute_plan(upper.plan, db).answers
        assert lower_answers <= exact <= upper_answers
        under = len(exact - lower_answers)
        over = len(upper_answers - exact)
        assert under <= lower.bound and over <= upper.bound
        print(f"{seed:>8}  {len(lower_answers):>5}  {len(exact):>5}  "
              f"{len(upper_answers):>5}  {under:>5}  {over:>5}")
    print()
    print("sandwich and constant accuracy bounds hold on every instance "
          "— while both envelopes run as bounded plans.")

    # A query with NO envelopes (Example 4.1's Q2): not bounded.
    q2 = parse_cq("Q2(x, y) :- R(w, x), R(y, w), w = 1")
    print()
    print(f"counterpoint: {q2}")
    print(f"  upper envelope: {upper_envelope(q2, access).verdict} "
          f"({upper_envelope(q2, access).reason})")


if __name__ == "__main__":
    main()
