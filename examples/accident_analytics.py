"""Example 1.1 end to end: UK road-accident analytics at scale.

Generates a synthetic accident dataset (the stand-in for the UK
1979–2005 data), discovers access constraints from it, answers the
paper's Q0 through a bounded plan, and contrasts time and data access
with the full-scan baseline across growing database sizes.

Run:  python examples/accident_analytics.py
"""

import time

from repro.core import analyze_coverage, is_boundedly_evaluable
from repro.engine import (ScanStats, build_bounded_plan, evaluate_cq,
                          execute_plan, static_bounds)
from repro.query import parse_cq
from repro.schema.discovery import DiscoveryOptions, discover_access_schema
from repro.workload import (AccidentScale, canonical_access_schema,
                            simple_accidents)


def q0_text(date: str) -> str:
    return (f"Q0(xa) :- Accident(aid, 'Queens Park', '{date}'), "
            "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)")


def main() -> None:
    access = canonical_access_schema()
    print("access schema (ψ1–ψ4):", access)
    print()

    print(f"{'|D|':>9}  {'fetched':>8}  {'bounded':>9}  {'scan':>9}  "
          f"{'speedup':>8}")
    for days in (60, 240, 960):
        db = simple_accidents(AccidentScale(days=days,
                                            max_accidents_per_day=40))
        date = db.relation_tuples("Accident")[0][2]
        q0 = parse_cq(q0_text(date))

        coverage = analyze_coverage(q0, access)
        assert coverage.is_covered
        plan = build_bounded_plan(coverage)

        start = time.perf_counter()
        result = execute_plan(plan, db)
        bounded_time = time.perf_counter() - start

        scan = ScanStats()
        start = time.perf_counter()
        naive = evaluate_cq(q0, db, scan)
        naive_time = time.perf_counter() - start
        assert result.answers == naive

        print(f"{db.size():>9}  {result.stats.tuples_fetched:>8}  "
              f"{bounded_time * 1e3:>7.2f}ms  {naive_time * 1e3:>7.2f}ms  "
              f"{naive_time / bounded_time:>7.0f}x")

    print()
    cost = static_bounds(plan)
    print(f"static certificate: fetch <= {cost.fetch_bound} "
          "(paper: 610 + 610*192*2 = 234850), whatever |D| is.")
    print()

    # Constraint discovery: the paper's constraints were "discovered by
    # simple aggregate queries on D0" — do the same on our data.
    small = simple_accidents(AccidentScale(days=30,
                                           max_accidents_per_day=20))
    discovered = discover_access_schema(
        small, DiscoveryOptions(max_bound=700))
    print(f"discovered {len(discovered)} access constraints from the "
          "data, e.g.:")
    for constraint in discovered.constraints[:6]:
        print(f"  {constraint}")
    date = small.relation_tuples("Accident")[0][2]
    decision = is_boundedly_evaluable(parse_cq(q0_text(date)), discovered)
    print(f"Q0 under the discovered schema: {decision.verdict}")


if __name__ == "__main__":
    main()
