"""Quickstart: bounded evaluability in five minutes.

Builds a small database with an access schema, checks that a query is
covered, compiles a bounded plan, and contrasts its data access with a
full-scan evaluation.

Run:  python examples/quickstart.py
"""

from repro import (AccessConstraint, AccessSchema, Database, Schema,
                   parse_cq)
from repro.core import analyze_coverage, is_boundedly_evaluable
from repro.engine import ScanStats, evaluate, execute_plan, static_bounds


def main() -> None:
    # 1. A relational schema and an access schema over it.
    #    Orders(order -> item, 10): an order has at most 10 items, and
    #    an index retrieves them; Items(item -> ...) is a key.
    schema = Schema.from_dict({
        "Orders": ("order_id", "customer", "item"),
        "Items": ("item", "name", "price"),
    })
    access = AccessSchema(schema, [
        AccessConstraint("Orders", ("order_id",), ("customer", "item"), 10),
        AccessConstraint("Items", ("item",), ("name", "price"), 1),
    ])

    # 2. Some data satisfying the constraints.
    db = Database(schema, access)
    db.insert_many("Orders", [
        ("o1", "ada", "widget"), ("o1", "ada", "sprocket"),
        ("o2", "bob", "widget"), ("o3", "cle", "gizmo"),
    ])
    db.insert_many("Items", [
        ("widget", "Widget Mk II", 9.5),
        ("sprocket", "Sprocket", 2.25),
        ("gizmo", "Gizmo Pro", 110.0),
    ])
    db.check()  # Raises if a constraint were violated.

    # 3. A query: names and prices of the items in order o1.
    q = parse_cq(
        "Q(name, price) :- Orders(oid, cust, item), "
        "Items(item, name, price), oid = 'o1'")

    # 4. Is it covered (the PTIME effective syntax, Theorem 3.11)?
    coverage = analyze_coverage(q, access)
    print(coverage.explain())
    print()

    # 5. BEP: boundedly evaluable? (Comes with a ready plan.)
    decision = is_boundedly_evaluable(q, access)
    print(f"BEP: {decision.explain()}")
    plan = decision.witness["plan"]
    cost = static_bounds(plan)
    print(f"static guarantee: fetches <= {cost.fetch_bound} tuples, "
          f"answers <= {cost.output_bound} — for ANY database "
          "satisfying the access schema, of any size.")
    print()

    # 6. Execute the bounded plan and compare with a full scan.
    result = execute_plan(plan, db)
    scan = ScanStats()
    naive = evaluate(q, db, scan)
    assert result.answers == naive
    print(f"answers: {sorted(result.answers)}")
    print(f"bounded plan fetched {result.stats.tuples_fetched} tuples "
          f"({result.stats.index_lookups} index lookups); "
          f"the scan baseline read {scan.tuples_scanned}.")


if __name__ == "__main__":
    main()
