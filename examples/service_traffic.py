"""Simulated production traffic against the bounded-evaluation service.

A dashboard backend serves the same handful of parameterized lookups
over and over — exactly the workload :class:`repro.service.
BoundedQueryService` is built for.  This demo:

1. generates a synthetic UK-accidents instance (Example 1.1's schema
   with its access constraints ψ1–ψ4);
2. registers two templates (drivers involved on a district+day; the
   district of a given accident);
3. fires a skewed stream of requests — a few hot bindings dominate, a
   long tail of cold ones — through a concurrent batch;
4. inserts fresh accidents mid-stream and shows the fetch cache
   invalidating (no stale answers), then prints the service counters.

Run with::

    PYTHONPATH=src python examples/service_traffic.py
"""

from __future__ import annotations

import random

from repro.service import BatchRequest, BoundedQueryService
from repro.workload.accidents import AccidentScale, simple_accidents

DRIVERS = ("Q(xa) :- Accident(aid, d, t), Casualty(cid, aid, cl, vid), "
           "Vehicle(vid, dri, xa), d = $district, t = $date")
DISTRICT = "Q(d) :- Accident(aid, d, t), aid = $aid"


def main() -> None:
    rng = random.Random(1979)
    db = simple_accidents(AccidentScale(days=90, max_accidents_per_day=40))
    print(f"database: {db}")

    service = BoundedQueryService(db)
    for name, text in [("drivers", DRIVERS), ("district", DISTRICT)]:
        template = service.register_template(name, text)
        print(template)

    # Zipf-ish traffic: 3 hot (district, date) pairs get ~80% of requests.
    accidents = db.relation_tuples("Accident")
    hot = rng.sample(accidents, 3)
    tail = rng.sample(accidents, 40)
    requests = []
    for _ in range(400):
        row = rng.choice(hot) if rng.random() < 0.8 else rng.choice(tail)
        if rng.random() < 0.7:
            requests.append(BatchRequest(
                template="drivers",
                params={"district": row[1], "date": row[2]}))
        else:
            requests.append(BatchRequest(
                template="district", params={"aid": row[0]}))

    report = service.execute_batch(requests, max_workers=8)
    print()
    print("-- steady-state traffic " + "-" * 40)
    print(report.summary())

    # A write lands mid-stream: the per-relation generation bump makes
    # every cached Accident fetch stale, so the next requests see it.
    aid, district, date = "a999999", hot[0][1], hot[0][2]
    before = service.execute_template("district", {"aid": aid})
    db.insert("Accident", (aid, district, date))
    after = service.execute_template("district", {"aid": aid})
    print()
    print("-- write invalidation " + "-" * 43)
    print(f"district({aid}) before insert: {sorted(before.answers)}")
    print(f"district({aid}) after insert:  {sorted(after.answers)}")
    assert after.answers == {(district,)}

    print()
    print("-- service counters " + "-" * 45)
    print(service.stats())


if __name__ == "__main__":
    main()
