"""Bounded query specialization in an e-commerce catalogue (Section 5).

"A query Q in an e-commerce system often comes with a set X of
parameters (variables) indicating, e.g., price range and make of a
product, which are expected to be instantiated with values of users'
choice before Q is executed."

This example designs a catalogue template query, uses QSP to find the
minimum set of parameters the UI must force users to fill in, and then
runs a specialized instance through its bounded plan.

Run:  python examples/ecommerce_specialization.py
"""

from repro import (AccessConstraint, AccessSchema, Const, Database, Schema,
                   Var, parse_cq)
from repro.core import (fully_parameterized_specialization,
                        is_boundedly_evaluable, specialize_minimally)
from repro.engine import evaluate, execute_plan


def main() -> None:
    schema = Schema.from_dict({
        "Product": ("pid", "make", "category", "price"),
        "Stock": ("pid", "store", "qty"),
        "Store": ("store", "city"),
    })
    access = AccessSchema(schema, [
        # A make sells at most 50 products; categories are not indexed.
        AccessConstraint("Product", ("make",),
                         ("pid", "category", "price"), 50),
        AccessConstraint("Product", ("pid",),
                         ("make", "category", "price"), 1),
        # A product is stocked in at most 30 stores.
        AccessConstraint("Stock", ("pid",), ("store", "qty"), 30),
        AccessConstraint("Store", ("store",), ("city",), 1),
    ])

    # The template: stores and cities stocking products of some make and
    # category.  Designated parameters: make, category.
    template = parse_cq(
        "Q(store, city) :- Product(pid, make, category, price), "
        "Stock(pid, store, qty), Store(store, city)")
    parameters = [Var("make"), Var("category")]

    print("template:", template)
    print("parameters X = {make, category}")
    decision = is_boundedly_evaluable(template, access)
    print(f"unspecialized BEP: {decision.verdict} — {decision.reason}")
    print()

    # QSP: what is the minimum set of parameters to instantiate?
    qsp = specialize_minimally(template, access, parameters=parameters)
    chosen = ", ".join(v.name for v in qsp.witness)
    print(f"QSP: {qsp.verdict} — instantiate {{{chosen}}} "
          f"({qsp.details['subsets_tried']} subsets examined)")
    print("=> the UI must force a make; category can stay optional.")
    print()

    # Instantiate and run.
    specialized = template.specialize({Var("make"): Const("acme")})
    decision = is_boundedly_evaluable(specialized, access)
    print(f"specialized query: {specialized}")
    print(f"BEP: {decision.verdict}")

    db = Database(schema, access)
    db.insert_many("Product", [
        ("p1", "acme", "tools", 19.0),
        ("p2", "acme", "garden", 45.0),
        ("p3", "globex", "tools", 12.0),
    ])
    db.insert_many("Stock", [
        ("p1", "s1", 3), ("p1", "s2", 0), ("p2", "s2", 7), ("p3", "s1", 9),
    ])
    db.insert_many("Store", [("s1", "berlin"), ("s2", "madrid")])
    db.check()

    plan = decision.witness["plan"]
    result = execute_plan(plan, db)
    assert result.answers == evaluate(specialized, db)
    print(f"answers: {sorted(result.answers)} "
          f"(fetched {result.stats.tuples_fetched} tuples)")
    print()

    # Proposition 5.4: with a covering access schema, any fully
    # parameterized FO query is boundedly specializable.
    print("Proposition 5.4 check (does A cover the schema?):")
    print(" ", fully_parameterized_specialization(template, access).reason)


if __name__ == "__main__":
    main()
