"""Personalized graph search: "find me all my friends in NYC who like
cycling" (paper, Section 1 / Example 1.1's graph claims).

Builds a synthetic social graph, declares its access constraints
(bounded friend degree, one home city, bounded likes, small label
domains), checks that the Graph Search pattern is covered, and matches
it through the bounded plan vs. a conventional subgraph-isomorphism
backtracker.

Run:  python examples/graph_search.py
"""

import time

from repro.graph import (GraphAccessStats, MatchStats, analyze_pattern,
                         bounded_match, subgraph_match)
from repro.workload import (SocialScale, generate_patterns,
                            graph_search_pattern, social_access_schema,
                            social_graph)


def main() -> None:
    scale = SocialScale(persons=10_000, max_friends=20, seed=42)
    graph = social_graph(scale)
    access = social_access_schema(scale)
    print(f"social graph: {graph}")
    print(f"graph access schema: {access}")
    print()

    me = ("person", 4711)
    pattern = graph_search_pattern(me, city="nyc", interest="cycling")
    print(f"pattern: {pattern}")
    coverage = analyze_pattern(pattern, access)
    print(coverage.explain())
    print()

    bounded_stats = GraphAccessStats()
    start = time.perf_counter()
    friends = bounded_match(pattern, graph, access, coverage=coverage,
                            stats=bounded_stats)
    bounded_time = time.perf_counter() - start

    scan_stats = MatchStats()
    start = time.perf_counter()
    baseline = subgraph_match(pattern, graph, stats=scan_stats,
                              strategy="scan")
    scan_time = time.perf_counter() - start
    assert friends == baseline

    print(f"matches: {friends}")
    print(f"bounded:      {bounded_stats.nodes_fetched} nodes fetched, "
          f"{bounded_time * 1e3:.2f} ms")
    print(f"conventional: {scan_stats.candidates_examined} candidates "
          f"examined, {scan_time * 1e3:.1f} ms")
    gap = scan_stats.candidates_examined / max(bounded_stats.nodes_fetched, 1)
    print(f"access gap: {gap:,.0f}x  (paper: ~4 orders of magnitude "
          "on billion-node graphs)")
    print()

    # How much of a random pattern workload is boundedly evaluable?
    patterns = generate_patterns(100, scale, seed=1)
    covered = sum(1 for p in patterns
                  if analyze_pattern(p, access).is_covered)
    print(f"random pattern workload: {covered}/100 covered "
          "(paper reports 60%)")


if __name__ == "__main__":
    main()
