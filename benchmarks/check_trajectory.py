"""The benchmark-trajectory gate: diff fresh BENCH_*.json against baselines.

The committed ``benchmarks/results/BENCH_<exp>.json`` files are the
repo's performance trajectory.  CI re-runs the benchmark suite with
``BENCH_RESULTS_DIR`` pointing at a scratch directory and then runs::

    python benchmarks/check_trajectory.py \
        --baseline benchmarks/results --fresh "$BENCH_RESULTS_DIR"

Metrics split into three classes by name:

* **wall-clock** (any ``_``-separated token in ``ms``, ``speedup``,
  ``ratio``, ``overhead``, ``time``, ``seconds``) — shared runners are
  noisy, so deltas only ever WARN;
* **rates** (a ``rate`` token, e.g. cache hit rates) — higher is
  better; a drop beyond the tolerance FAILs;
* **counters** (everything else: index lookups, tuples fetched,
  X-values, plan sizes, rule firings, recovered rows, ...) — these are
  deterministic functions of the code and the seeded workloads, so an
  *increase* is a genuine perf-trajectory regression and FAILs, while
  a decrease WARNs that the committed baseline is stale and should be
  refreshed in the PR (see README, "The perf trajectory").

A metric or experiment present in the baseline but missing from the
fresh run FAILs (the gate must not pass by silently not measuring);
fresh-only metrics WARN until their baseline is committed.

A BENCH json may additionally carry a ``gates`` object declared by the
experiment (``ExperimentLog.gate``)::

    "gates": {"warm_ms_per_request": {"max_increase_pct": 2.0},
              "columnar_boundary_speedup": {"min_value": 3.0}}

A gated metric is a *hard* bound that overrides the class policy: the
run FAILs when the fresh value exceeds the baseline by more than the
declared ``max_increase_pct`` percentage — even for wall-clock
metrics, which are otherwise warn-only — or falls below the absolute
``min_value`` floor.  Floor gates compare the fresh value against the
declared constant, so they bind even before a baseline for the metric
is committed.  Gate paths dot into nested metric dicts.  Declaring a
wall-clock gate is a statement that its baseline is regenerated on
hardware comparable to where the gate runs.

Exit status: 0 = trajectory holds (warnings allowed), 1 = regression,
2 = usage error.  Plain stdlib, no third-party imports — CI runs it
before installing anything beyond the package itself.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass

WALLCLOCK_TOKENS = {"ms", "speedup", "ratio", "overhead", "time", "seconds",
                    "sec", "second", "throughput"}
RATE_TOKENS = {"rate"}

#: Absolute slack for rate drops (hit rates jitter slightly with the
#: ordering of concurrent batches); counters get none — they are
#: deterministic.
RATE_TOLERANCE = 0.02


@dataclass
class Issue:
    severity: str  # "FAIL" | "WARN"
    experiment: str
    metric: str
    detail: str

    def __str__(self) -> str:
        return (f"{self.severity} {self.experiment} {self.metric}: "
                f"{self.detail}")


def classify(metric_path: str) -> str:
    tokens = set(metric_path.replace(".", "_").lower().split("_"))
    if tokens & WALLCLOCK_TOKENS:
        return "wallclock"
    if tokens & RATE_TOKENS:
        return "rate"
    return "counter"


def _delta(baseline: float, fresh: float) -> str:
    if baseline:
        return f"{baseline} -> {fresh} ({(fresh - baseline) / baseline:+.1%})"
    return f"{baseline} -> {fresh}"


def compare_metric(experiment: str, path: str, baseline, fresh,
                   issues: list[Issue]) -> None:
    if isinstance(baseline, dict) or isinstance(fresh, dict):
        if not (isinstance(baseline, dict) and isinstance(fresh, dict)):
            issues.append(Issue("FAIL", experiment, path,
                                "metric changed shape "
                                f"({type(baseline).__name__} vs "
                                f"{type(fresh).__name__})"))
            return
        for key in sorted(baseline):
            if key not in fresh:
                # A counter sub-key can legitimately vanish when its
                # count improves to zero (e.g. an optimizer rule that
                # no longer fires builds no rule_firings entry) — that
                # follows the counter-decrease-warns policy.  Anything
                # else going missing means the run changed shape.
                if classify(f"{path}.{key}") == "counter":
                    issues.append(Issue(
                        "WARN", experiment, f"{path}.{key}",
                        "counter absent from the fresh run (improved "
                        "to zero?); refresh the committed baseline"))
                else:
                    issues.append(Issue("FAIL", experiment,
                                        f"{path}.{key}",
                                        "missing from the fresh run"))
            else:
                compare_metric(experiment, f"{path}.{key}", baseline[key],
                               fresh[key], issues)
        for key in sorted(set(fresh) - set(baseline)):
            issues.append(Issue("WARN", experiment, f"{path}.{key}",
                                "new metric; commit a baseline for it"))
        return
    numeric = (int, float)
    if not (isinstance(baseline, numeric) and isinstance(fresh, numeric)):
        if baseline != fresh:
            issues.append(Issue("WARN", experiment, path,
                                f"non-numeric change: {baseline!r} -> "
                                f"{fresh!r}"))
        return
    if baseline == fresh:
        return
    kind = classify(path)
    if kind == "wallclock":
        issues.append(Issue("WARN", experiment, path,
                            f"wall-clock delta {_delta(baseline, fresh)} "
                            "(noise-tolerant, not gated)"))
    elif kind == "rate":
        if fresh < baseline - RATE_TOLERANCE:
            issues.append(Issue("FAIL", experiment, path,
                                f"rate dropped {_delta(baseline, fresh)}"))
        else:
            issues.append(Issue("WARN", experiment, path,
                                f"rate moved {_delta(baseline, fresh)}"))
    else:  # counter
        if fresh > baseline:
            issues.append(Issue("FAIL", experiment, path,
                                "counter regression "
                                f"{_delta(baseline, fresh)}"))
        else:
            issues.append(Issue(
                "WARN", experiment, path,
                f"counter improved {_delta(baseline, fresh)}; refresh the "
                "committed baseline in this PR"))


def lookup(metrics, path: str):
    """The value at a (possibly dotted) gate path.  Tries the whole
    remaining path as a literal key first, so flat keys that themselves
    contain dots (folded metric labels like ``...total.op=hash_join``)
    stay addressable."""
    if not isinstance(metrics, dict):
        return None
    if path in metrics:
        return metrics[path]
    head, _, rest = path.partition(".")
    if rest and head in metrics:
        return lookup(metrics[head], rest)
    return None


def check_gates(experiment: str, gates: dict, base_metrics: dict,
                fresh_metrics: dict, issues: list[Issue]) -> None:
    """Enforce the hard per-metric bounds a BENCH json declares."""
    numeric = (int, float)

    def good(value) -> bool:
        return isinstance(value, numeric) and not isinstance(value, bool)

    for path in sorted(gates):
        spec = gates[path] if isinstance(gates[path], dict) else {}
        pct = spec.get("max_increase_pct")
        floor = spec.get("min_value")
        if not (good(pct) or good(floor)):
            issues.append(Issue("FAIL", experiment, path,
                                "gate declares no numeric "
                                f"max_increase_pct or min_value: {spec!r}"))
            continue
        fresh = lookup(fresh_metrics, path)
        if not good(fresh):
            issues.append(Issue("FAIL", experiment, path,
                                "gated metric missing or non-numeric "
                                f"in the fresh run: {fresh!r}"))
            continue
        if good(floor) and fresh < floor:
            issues.append(Issue("FAIL", experiment, path,
                                f"hard floor gate (min {floor:g}) broken: "
                                f"fresh value is {fresh}"))
        if good(pct):
            baseline = lookup(base_metrics, path)
            if not good(baseline):
                issues.append(Issue(
                    "FAIL", experiment, path,
                    "gated metric missing or non-numeric in the "
                    f"baseline: {baseline!r}"))
                continue
            if fresh > baseline * (1 + pct / 100):
                issues.append(Issue("FAIL", experiment, path,
                                    f"hard gate (max +{pct:g}%) exceeded: "
                                    f"{_delta(baseline, fresh)}"))


def load_payloads(directory: pathlib.Path) -> dict[str, dict]:
    payloads = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except ValueError as error:
            raise SystemExit(f"{path} is not valid JSON: {error}")
        payloads[payload.get("experiment", path.stem)] = payload
    return payloads


def load_results(directory: pathlib.Path) -> dict[str, dict]:
    return {experiment: payload.get("metrics", {})
            for experiment, payload in load_payloads(directory).items()}


def compare_dirs(baseline_dir: pathlib.Path,
                 fresh_dir: pathlib.Path) -> list[Issue]:
    baselines = load_payloads(baseline_dir)
    fresh = load_payloads(fresh_dir)
    issues: list[Issue] = []
    if not baselines:
        raise SystemExit(f"no BENCH_*.json baselines in {baseline_dir}")
    for experiment in sorted(baselines):
        if experiment not in fresh:
            issues.append(Issue("FAIL", experiment, "(all)",
                                "experiment missing from the fresh run"))
            continue
        base_metrics = baselines[experiment].get("metrics", {})
        fresh_metrics = fresh[experiment].get("metrics", {})
        for metric in sorted(base_metrics):
            if metric not in fresh_metrics:
                issues.append(Issue("FAIL", experiment, metric,
                                    "missing from the fresh run"))
            else:
                compare_metric(experiment, metric, base_metrics[metric],
                               fresh_metrics[metric], issues)
        for metric in sorted(set(fresh_metrics) - set(base_metrics)):
            issues.append(Issue("WARN", experiment, metric,
                                "new metric; commit a baseline for it"))
        # The committed baseline's gates are the contract; gates a fresh
        # run adds apply too, until their baseline lands.
        gates = {**fresh[experiment].get("gates", {}),
                 **baselines[experiment].get("gates", {})}
        if gates:
            check_gates(experiment, gates, base_metrics, fresh_metrics,
                        issues)
    for experiment in sorted(set(fresh) - set(baselines)):
        issues.append(Issue("WARN", experiment, "(all)",
                            "new experiment; commit its BENCH json"))
    return issues


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff fresh BENCH_*.json against committed baselines")
    parser.add_argument("--baseline", required=True,
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--fresh", required=True,
                        help="directory the fresh benchmark run wrote "
                             "(BENCH_RESULTS_DIR)")
    args = parser.parse_args(argv)
    baseline_dir = pathlib.Path(args.baseline)
    fresh_dir = pathlib.Path(args.fresh)
    for directory in (baseline_dir, fresh_dir):
        if not directory.is_dir():
            print(f"error: no such directory: {directory}", file=sys.stderr)
            return 2

    issues = compare_dirs(baseline_dir, fresh_dir)
    failures = [issue for issue in issues if issue.severity == "FAIL"]
    warnings = [issue for issue in issues if issue.severity == "WARN"]
    for issue in issues:
        print(issue)
    print(f"-- trajectory: {len(failures)} regression(s), "
          f"{len(warnings)} warning(s) across "
          f"{len(load_results(baseline_dir))} experiment(s)")
    if failures:
        print("counter-based metrics regressed; either fix the "
              "regression or (for an intended trade-off) update the "
              "committed BENCH_*.json baselines in this PR and say why.")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
