"""EXP-8 — service amortization: cold vs. warm bounded evaluation.

Not a paper experiment: this measures the subsystem the ROADMAP adds on
top of the reproduction.  The paper guarantees that a covered query's
plan and cost certificate are functions of Q and A only (Section 2), so
a persistent service may compute them once and reuse them for every
request; likewise each ``fetch(X = a)`` result is at most N tuples and
may be cached under a write-generation key.  Claims checked here:

* warm execution of a repeated parameterized query (plan-cache +
  fetch-cache hits) is **>= 5x faster** than the cold pipeline
  (parse -> coverage fixpoint -> plan build -> cold fetches);
* cached results are **bit-identical** to uncached execution and to the
  naive scan evaluator, for every binding tried;
* the access accounting stays honest: warm requests report their tuples
  as cache-served, not as storage fetches.

Run with ``python -m pytest benchmarks/bench_exp8_service.py -x -q``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.engine.naive import evaluate_cq
from repro.obs import MetricsRegistry
from repro.query import parse_cq
from repro.service import BatchRequest, BoundedQueryService
from repro.workload.accidents import AccidentScale, simple_accidents

from _harness import ExperimentLog, timed

TEMPLATE = ("Q(xa) :- Accident(aid, d, t), Casualty(cid, aid, cl, vid), "
            "Vehicle(vid, dri, xa), d = $district, t = $date")

SCALE = AccidentScale(days=120, max_accidents_per_day=40)
WARM_REQUESTS = 60
DISTINCT_BINDINGS = 12


@pytest.fixture(scope="module")
def db():
    return simple_accidents(SCALE)


@pytest.fixture(scope="module")
def bindings(db):
    """A pool of (district, date) pairs drawn from the data, so repeated
    requests hit both caches the way production traffic would."""
    rng = random.Random(8)
    accidents = db.relation_tuples("Accident")
    pool = [{"district": row[1], "date": row[2]}
            for row in rng.sample(accidents, DISTINCT_BINDINGS)]
    return [rng.choice(pool) for _ in range(WARM_REQUESTS)]


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-8", "service amortization: cold vs warm bounded evaluation")
    yield experiment
    experiment.flush()


def bound_text(binding) -> str:
    return (f"Q(xa) :- Accident(aid, '{binding['district']}', "
            f"'{binding['date']}'), Casualty(cid, aid, cl, vid), "
            "Vehicle(vid, dri, xa)")


def cold_once(db, binding):
    """The one-shot pipeline: fresh service, no caches primed."""
    service = BoundedQueryService(db)
    return service.execute(bound_text(binding))


def calibration_spin(iterations: int = 150_000) -> int:
    """A fixed pure-interpreter workload (~5ms) timed back-to-back with
    each warm repeat.  Machine speed and ambient load hit the spin and
    the warm loop alike, so ``warm / spin`` is a load-normalized cost
    the hard trajectory gate can hold to a tight bound where absolute
    milliseconds (24% run-to-run spread on a busy host) cannot."""
    total = 0
    for i in range(iterations):
        total += i & 7
    return total


@pytest.fixture(scope="module")
def warm_run(db, bindings, log):
    """Measure the cold pipeline and the warm hot path once; the
    correctness test and the wall-clock test split its assertions."""
    registry = MetricsRegistry()
    service = BoundedQueryService(db, registry=registry)
    service.register_template("drivers", TEMPLATE)

    # Cold: every request pays parse + coverage + plan build + fetches.
    cold_total, _ = timed(
        lambda: [cold_once(db, b) for b in bindings[:10]], repeat=2)
    cold_per_request = cold_total / 10

    # Prime, then measure the warm hot path, interleaving each repeat
    # with a calibration spin so the gated metric is load-normalized.
    for binding in bindings[:DISTINCT_BINDINGS]:
        service.execute_template("drivers", binding)
    warm_total = float("inf")
    spin_best = float("inf")
    warm_results = None
    for _ in range(15):
        start = time.perf_counter()
        calibration_spin()
        spin_best = min(spin_best, time.perf_counter() - start)
        start = time.perf_counter()
        warm_results = [service.execute_template("drivers", b)
                        for b in bindings]
        warm_total = min(warm_total, time.perf_counter() - start)
    # Ratio of the two best-of-9s: each min dodges sporadic scheduler
    # spikes, and sustained load inflates both sides alike.
    spin_ratio = warm_total / spin_best
    warm_per_request = warm_total / len(bindings)

    speedup = cold_per_request / max(warm_per_request, 1e-9)

    stats = service.stats()
    info = stats.fetch_cache
    log.row("")
    log.table(
        ["metric", "value"],
        [["|D|", db.size()],
         ["distinct bindings", DISTINCT_BINDINGS],
         ["cold per request", f"{cold_per_request * 1e3:.2f}ms"],
         ["warm per request", f"{warm_per_request * 1e3:.3f}ms"],
         ["speedup", f"{speedup:.0f}x"],
         ["plan cache", str(stats.plan_cache)],
         ["fetch cache", str(info)]])
    log.row("")
    log.row("claim: warm (plan-cache + fetch-cache) execution of a "
            "repeated parameterized query is >= 5x faster than cold.")
    log.row(f"measured: {speedup:.0f}x")
    log.metric("db_size", db.size())
    log.metric("cold_ms_per_request", round(cold_per_request * 1e3, 4))
    log.metric("warm_ms_per_request", round(warm_per_request * 1e3, 4))
    log.metric("warm_vs_spin_ratio", round(spin_ratio, 4))
    log.metric("warm_speedup", round(speedup, 2))
    log.metric("fetch_cache_hit_rate", round(info.hit_rate, 4))
    # The warm service's whole registry (request/fetch/op counters,
    # cache and storage collectors) rides into BENCH_exp-8.json, so the
    # trajectory gate diffs the observability plane too.
    log.metric("observability", registry.as_flat_dict())
    # Hard gate: observability stays default-off, so the warm hot path
    # must hold within 2% of the committed baseline.  Gated in
    # load-normalized units (warm loop over calibration spin, best
    # pairing of 9) — raw milliseconds swing ~24% run-to-run with
    # ambient load and stay report-only.
    log.gate("warm_vs_spin_ratio", max_increase_pct=2.0)
    return {"warm_results": warm_results, "speedup": speedup,
            "hit_rate": info.hit_rate}


@pytest.mark.bench_correctness
def test_warm_answers_bit_identical_and_caches_effective(db, bindings,
                                                         warm_run):
    # Bit-identical to the uncached bounded pipeline AND the naive
    # scan evaluator, for every distinct binding.
    checked = set()
    for binding, warm in zip(bindings, warm_run["warm_results"]):
        key = (binding["district"], binding["date"])
        if key in checked:
            continue
        checked.add(key)
        uncached = cold_once(db, binding)
        naive = evaluate_cq(parse_cq(bound_text(binding)), db)
        assert warm.answers == uncached.answers == naive
        assert warm.bounded and uncached.bounded
    assert warm_run["hit_rate"] > 0.5


def test_warm_speedup(warm_run):
    speedup = warm_run["speedup"]
    assert speedup >= 5.0, (
        f"warm path only {speedup:.1f}x faster than cold")


@pytest.mark.bench_correctness
def test_accounting_distinguishes_cold_from_cached(db, bindings):
    service = BoundedQueryService(db)
    service.register_template("drivers", TEMPLATE)
    binding = bindings[0]
    first = service.execute_template("drivers", binding)
    second = service.execute_template("drivers", binding)
    # The cold request fetched from storage; the warm one was served
    # entirely from the cache — and says so.
    assert first.stats.tuples_fetched > 0
    assert first.stats.fetch_cache_hits == 0
    assert second.stats.tuples_fetched == 0
    assert second.stats.fetch_cache_hits == second.stats.index_lookups
    assert second.stats.tuples_from_cache == first.stats.tuples_fetched


@pytest.mark.bench_correctness
def test_concurrent_batch_throughput(db, bindings, log):
    service = BoundedQueryService(db)
    service.register_template("drivers", TEMPLATE)
    requests = [BatchRequest(template="drivers", params=b) for b in bindings]
    sequential = service.execute_batch(requests, max_workers=1)
    concurrent = service.execute_batch(requests, max_workers=4)
    assert sequential.errors == concurrent.errors == 0
    for a, b in zip(sequential.outcomes, concurrent.outcomes):
        assert a.result.answers == b.result.answers
    log.row("")
    log.row(f"batch x{len(requests)} sequential: {sequential.summary()}")
    log.row(f"batch x{len(requests)} concurrent: {concurrent.summary()}")
