"""EXP-1 — Example 1.1: Q0 via bounded evaluation vs. full-scan joins.

Paper claims reproduced (shape, not absolute numbers — see DESIGN.md):

* Q0 is answered by accessing at most ``610 + 610·192·2`` tuples
  through indexes, versus scanning millions ("9 seconds as opposed to
  more than 14 hours by MySQL");
* in practice the plan touches far fewer ("610 × 2 × 2 tuples only,
  since accidents involved two vehicles on average").

Here the dataset is the synthetic accident generator at three scales;
the baseline is the in-memory hash-join evaluator.  Expected shape: the
bounded plan's time and access count stay flat as |D| grows, while the
baseline grows linearly — the gap widens with scale.
"""

from __future__ import annotations

import pytest

from repro.core import analyze_coverage
from repro.engine import (ScanStats, build_bounded_plan, evaluate_cq,
                          execute_plan, static_bounds)
from repro.query import parse_cq
from repro.workload import AccidentScale, canonical_access_schema, \
    simple_accidents

from _harness import ExperimentLog, timed

SCALES = {
    "small": AccidentScale(days=60, max_accidents_per_day=40),
    "medium": AccidentScale(days=240, max_accidents_per_day=40),
    "large": AccidentScale(days=960, max_accidents_per_day=40),
}


def q0_for(db) -> "CQ":
    date = db.relation_tuples("Accident")[0][2]
    return parse_cq(
        f"Q0(xa) :- Accident(aid, 'Queens Park', '{date}'), "
        "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)")


@pytest.fixture(scope="module")
def worlds():
    return {name: simple_accidents(scale)
            for name, scale in SCALES.items()}


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-1", "Example 1.1: Q0 bounded plan vs full-scan baseline")
    yield experiment
    experiment.flush()


@pytest.mark.parametrize("size", list(SCALES))
def test_bounded_q0(benchmark, worlds, size):
    db = worlds[size]
    q0 = q0_for(db)
    coverage = analyze_coverage(q0, canonical_access_schema())
    plan = build_bounded_plan(coverage)
    result = benchmark(lambda: execute_plan(plan, db))
    assert result.answers == evaluate_cq(coverage.query, db)
    benchmark.extra_info["tuples_fetched"] = result.stats.tuples_fetched
    benchmark.extra_info["db_size"] = db.size()


@pytest.mark.parametrize("size", list(SCALES))
def test_naive_q0(benchmark, worlds, size):
    db = worlds[size]
    q0 = q0_for(db)
    stats = ScanStats()
    benchmark(lambda: evaluate_cq(q0, db, stats))
    benchmark.extra_info["db_size"] = db.size()


def test_report(benchmark, worlds, log):
    """Prints the paper-style comparison table (EXPERIMENTS.md EXP-1)."""
    access = canonical_access_schema()
    rows = []
    speedups = []
    for size, db in worlds.items():
        q0 = q0_for(db)
        coverage = analyze_coverage(q0, access)
        plan = build_bounded_plan(coverage)
        cost = static_bounds(plan)
        bounded_time, bounded_result = timed(
            lambda: execute_plan(plan, db), repeat=3)
        scan = ScanStats()
        naive_time, naive_answers = timed(
            lambda: evaluate_cq(q0, db, scan))
        assert bounded_result.answers == naive_answers
        speedup = naive_time / max(bounded_time, 1e-9)
        speedups.append(speedup)
        rows.append([
            size, db.size(),
            bounded_result.stats.tuples_fetched, cost.fetch_bound,
            f"{bounded_time * 1e3:.2f}ms", f"{naive_time * 1e3:.2f}ms",
            f"{speedup:.0f}x",
        ])
    log.row("")
    log.table(["scale", "|D|", "fetched", "static bound",
               "bounded", "full-scan", "speedup"], rows)
    log.row("")
    log.row("paper: plan accesses <= 610 + 610*192*2 = 234850 tuples on "
            "a 31M-tuple dataset; 9s vs >14h (5600x).")
    log.row(f"measured: speedup grows with |D| "
            f"({' -> '.join(f'{s:.0f}x' for s in speedups)}); "
            "fetched tuples stay flat.")
    # The qualitative claim: the gap must widen with scale.
    assert speedups[-1] > speedups[0]
    benchmark(lambda: None)
