"""Ablation — the plan builder's two quality refinements (DESIGN.md S5).

The Theorem 3.11 construction is correct with or without them; what
they buy is the paper's Example 1.1 plan *shape*:

* **eager verification** runs each atom's condition-(c) check as soon
  as its inputs are covered, so selective predicates (district =
  "Queen's Park") prune the environment before the expensive casualty
  expansion — without it the district filter runs after the 610×192
  blow-up;
* **subsumed-verification skipping** drops checks that an application
  fetch already proved, saving one full index pass per atom — this is
  the difference between the paper's 610 + 610·192·2 arithmetic and a
  naive two-pass construction.

The ablation builds Q0's plan under all four switch combinations and
compares static certificates and actual access on data; all four plans
must return identical answers.
"""

from __future__ import annotations

import pytest

from repro.core import analyze_coverage
from repro.engine import build_bounded_plan, execute_plan, static_bounds
from repro.query import parse_cq
from repro.workload import (AccidentScale, canonical_access_schema,
                            simple_accidents)

from _harness import ExperimentLog

VARIANTS = {
    "full builder": dict(eager_verification=True,
                         skip_subsumed_verification=True),
    "no skip": dict(eager_verification=True,
                    skip_subsumed_verification=False),
    "no eager": dict(eager_verification=False,
                     skip_subsumed_verification=True),
    "neither": dict(eager_verification=False,
                    skip_subsumed_verification=False),
}


@pytest.fixture(scope="module")
def world():
    db = simple_accidents(AccidentScale(days=240,
                                        max_accidents_per_day=40))
    access = canonical_access_schema()
    date = db.relation_tuples("Accident")[0][2]
    q0 = parse_cq(
        f"Q0(xa) :- Accident(aid, 'Queens Park', '{date}'), "
        "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)")
    return db, access, q0


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-ABL", "builder ablation: eager verification and "
        "subsumed-verification skipping")
    yield experiment
    experiment.flush()


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_all_variants_correct(benchmark, world, variant):
    db, access, q0 = world
    coverage = analyze_coverage(q0, access)
    plan = build_bounded_plan(coverage, **VARIANTS[variant])
    reference = build_bounded_plan(coverage)
    result = benchmark(lambda: execute_plan(plan, db))
    assert result.answers == execute_plan(reference, db).answers


def test_report(benchmark, world, log):
    db, access, q0 = world
    coverage = analyze_coverage(q0, access)
    rows = []
    bounds = {}
    for variant, switches in VARIANTS.items():
        plan = build_bounded_plan(coverage, **switches)
        cost = static_bounds(plan)
        result = execute_plan(plan, db)
        bounds[variant] = cost.fetch_bound
        rows.append([variant, len(plan.fetch_ops()), cost.fetch_bound,
                     result.stats.tuples_fetched])
    log.row("")
    log.table(["builder variant", "fetch ops", "static fetch bound",
               "actual fetched"], rows)
    log.row("")
    log.row("paper arithmetic: the full builder certifies "
            "610 + 610 + 2*610*192 = 235460; dropping the skip adds a "
            "redundant index pass per atom; dropping eagerness defers "
            "the selective district filter past the casualty expansion.")
    assert bounds["full builder"] <= bounds["no skip"]
    assert bounds["full builder"] <= bounds["neither"]
    benchmark(lambda: None)
