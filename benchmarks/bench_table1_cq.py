"""EXP-T1 — Table 1, row "CQ": the tractability split.

Table 1 states: BEP(CQ) EXPSPACE-complete, CQP(CQ) PTIME, UEP/LEP/QSP
NP-complete.  Complexity classes cannot be measured, but their
*scaling signatures* can: this bench sweeps input sizes and shows

* CQP (the covered-query check) growing polynomially and answering
  long chain queries in microseconds;
* A-satisfiability / A-containment (the exponential enumeration cores
  behind exact BEP) blowing up combinatorially with the variable count;
* the UEP relaxation search and QSP subset search growing with the
  atom/parameter count (their NP knobs).
"""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Schema, Var
from repro.core import (a_contained, analyze_coverage, is_boundedly_evaluable,
                        specialize_minimally, upper_envelope)
from repro.query import parse_cq

from _harness import ExperimentLog, timed


def chain_world():
    schema = Schema.from_dict({"R": ("A", "B")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 2)])
    return schema, access


def chain_query(length: int) -> "CQ":
    atoms = ", ".join(f"R(x{i}, x{i + 1})" for i in range(length))
    return parse_cq(f"Q(x{length}) :- {atoms}, x0 = 1")


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-T1", "Table 1 / CQ row: PTIME coverage vs exponential "
        "enumeration")
    yield experiment
    experiment.flush()


@pytest.mark.parametrize("length", [2, 6, 12, 24])
def test_cqp_scaling(benchmark, length):
    """CQP(CQ) is PTIME (Theorem 3.14): grows gently with |Q|."""
    _, access = chain_world()
    q = chain_query(length)
    result = benchmark(lambda: analyze_coverage(q, access))
    assert result.is_covered


@pytest.mark.parametrize("n_vars", [2, 4, 6])
def test_a_instance_enumeration_scaling(benchmark, n_vars):
    """Lemma 3.2's NP core: the A-instance space grows like the Bell
    numbers of the variable count (exactly the exponential the
    EXPSPACE/NP lower bounds exploit)."""
    from repro.core import a_instances
    schema = Schema.from_dict({"R": ("X",)})
    access = AccessSchema(schema, [
        AccessConstraint("R", (), ("X",), max(2, n_vars - 1))])
    atoms = ", ".join(f"R(v{i})" for i in range(n_vars))
    q = parse_cq(f"Q() :- {atoms}, v0 = 1")
    count = benchmark(lambda: sum(1 for _ in a_instances(q, access)))
    benchmark.extra_info["a_instances"] = count
    assert count > 0


@pytest.mark.parametrize("length", [2, 3, 4])
def test_bep_rewriting_scaling(benchmark, length):
    """BEP's chase+core pipeline on chains needing the rewrite path."""
    schema = Schema.from_dict({"R": ("A", "B")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 1)])
    # Duplicate every chain atom: the chase merges, the core folds.
    atoms = ", ".join(f"R(x{i}, x{i + 1}), R(x{i}, y{i + 1})"
                      for i in range(length))
    q = parse_cq(f"Q(x{length}) :- {atoms}, x0 = 1")
    decision = benchmark(lambda: is_boundedly_evaluable(q, access))
    assert decision


def test_report(benchmark, log):
    _, access = chain_world()
    rows = []
    for length in (2, 4, 8, 16, 24):
        q = chain_query(length)
        cqp_t, cov = timed(lambda: analyze_coverage(q, access), repeat=3)
        rows.append([f"chain-{length}", len(q.atoms),
                     f"{cqp_t * 1e6:.0f}us", "covered"])
        assert cov.is_covered
    log.row("")
    log.row("CQP(CQ) — PTIME effective syntax (Theorem 3.11(3)):")
    log.table(["query", "atoms", "time", "verdict"], rows)

    from repro.core import a_instances
    rows = []
    for n_vars in (2, 4, 6, 8):
        schema = Schema.from_dict({"R": ("X",)})
        acc = AccessSchema(schema, [
            AccessConstraint("R", (), ("X",), max(2, n_vars - 1))])
        atoms = ", ".join(f"R(v{i})" for i in range(n_vars))
        q = parse_cq(f"Q() :- {atoms}, v0 = 1")
        enum_t, count = timed(
            lambda: sum(1 for _ in a_instances(q, acc)))
        rows.append([n_vars, count, f"{enum_t * 1e3:.2f}ms"])
    log.row("")
    log.row("A-instance space (Lemma 3.2's NP core) — Bell-number "
            "growth in the variable count:")
    log.table(["variables", "A-instances", "time"], rows)

    # Containment under constraints (Lemma 3.3, Πp2).
    schema = Schema.from_dict({"R": ("A", "B")})
    acc = AccessSchema(schema, [AccessConstraint("R", ("A",), ("B",), 1)])
    q1 = parse_cq("Q(y, z) :- R(x, y), R(x, z), x = 1")
    q2 = parse_cq("Q(y, y) :- R(x, y), x = 1")
    cont_t, verdict = timed(lambda: a_contained(q1, q2, acc))
    log.row("")
    log.row(f"A-containment (Lemma 3.3, Πp2-c): FD-equivalent pair "
            f"decided {verdict.verdict} in {cont_t * 1e3:.2f}ms")

    # UEP / QSP NP searches (Theorems 4.4, 5.3).
    sch41 = Schema.from_dict({"R": ("A", "B")})
    acc41 = AccessSchema(sch41, [AccessConstraint("R", ("A",), ("B",), 3)])
    q41 = parse_cq("Q1(x) :- R(w, x), R(y, w), R(x, z), w = 1")
    uep_t, uep = timed(lambda: upper_envelope(q41, acc41))
    assert uep
    qsp_q = parse_cq("Q(c) :- R(x, y), R(y, c)")
    qsp_t, qsp = timed(lambda: specialize_minimally(
        qsp_q, acc41, parameters=[Var("x"), Var("y"), Var("c")]))
    assert qsp
    log.row(f"UEP(CQ) (NP-c): relaxation search {uep_t * 1e3:.2f}ms; "
            f"QSP(CQ) (NP-c): subset search {qsp_t * 1e3:.2f}ms")
    log.row("")
    log.row("shape reproduced: the PTIME column of Table 1 stays in "
            "microseconds as |Q| grows; the NP/Πp2 procedures grow "
            "combinatorially with their witness size.")
    benchmark(lambda: None)
