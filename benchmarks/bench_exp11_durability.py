"""EXP-11 — durability: disk-engine recovery time and fetch overhead.

Not a paper experiment: this measures the durable storage engine.  The
paper's bounded-evaluation guarantee is about *how much* data a query
touches; the disk engine's job is to make that data survive a restart
without giving the guarantee back.  Claims checked:

* answers and access accounting (index lookups, tuples fetched) are
  **bit-identical** between the memory engine and the disk engine, and
  between a disk engine and its own reopened (recovered) self — these
  are counter assertions and run in the non-continue-on-error
  ``bench_correctness`` CI step;
* recovery is **complete**: every row written before the close is back
  after the reopen, whether it came from the WAL, a snapshot, or a
  snapshot plus a WAL tail, and write generations are preserved;
* cold-open time (WAL replay vs. snapshot segments) and the disk
  engine's read-path overhead vs. memory are **reported** — wall-clock
  on shared runners is noise, so per the EXP-10 policy these numbers
  carry no hard assertions.

Run with ``python -m pytest benchmarks/bench_exp11_durability.py -x -q``.
"""

from __future__ import annotations

import random

import pytest

from repro import Database, is_boundedly_evaluable
from repro.engine import optimize
from repro.engine.executor import (AccessStats, Executor,
                                   LegacyTupleExecutor)
from repro.obs import MetricsRegistry, attach_storage_collector
from repro.query import parse_query
from repro.storage.disk import DiskBackend, disk_backend_factory
from repro.storage.statistics import TableStatistics
from repro.workload.accidents import AccidentScale, simple_accidents

from _harness import ExperimentLog, timed

SCALE = AccidentScale(days=40, max_accidents_per_day=60)
QUERIES = 6
OPEN_REPEAT = 3
FETCH_REPEAT = 10


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-11", "durability: disk-engine recovery and fetch overhead")
    yield experiment
    experiment.flush()


class RecordingExecutor(LegacyTupleExecutor):
    """Harvests the (constraint, x-value batch) pairs a plan issues so
    the overhead comparison replays *real* traffic (as in EXP-10).
    Based on the tuple executor because the columnar ``execute`` never
    crosses the ``_fetch_flat`` hook; the batches are the same either
    way (the accounting identity EXP-9 enforces)."""

    def __init__(self, db):
        super().__init__(db)
        self.batches: list[tuple[object, list[tuple]]] = []

    def _fetch_flat(self, constraint, x_values, stats):
        self.batches.append((constraint, list(x_values)))
        return super()._fetch_flat(constraint, x_values, stats)


def accident_queries(db):
    rng = random.Random(11)
    dates = sorted({row[2] for row in db.relation_tuples("Accident")})
    return [
        (f"drivers-on[{date}]",
         f"Q(xa) :- Accident(aid, d, t), Casualty(cid, aid, cl, vid), "
         f"Vehicle(vid, dri, xa), t = '{date}'")
        for date in rng.sample(dates, QUERIES)
    ]


def compile_plans(db, queries):
    statistics = TableStatistics.from_database(db)
    plans = []
    for label, text in queries:
        decision = is_boundedly_evaluable(parse_query(text),
                                          db.access_schema)
        assert decision.is_yes, f"{label} must be bounded: {decision.reason}"
        plans.append((label, optimize(decision.witness["plan"], statistics)))
    return plans


def run_all(executor, plans):
    stats = AccessStats()
    answers = []
    for _, plan in plans:
        result = executor.execute(plan)
        stats.merge(result.stats)
        answers.append(result.answers)
    return answers, stats


def replay(executor, batches):
    stats = AccessStats()
    rows = [executor._fetch_flat(constraint, x_values, stats)
            for constraint, x_values in batches]
    return rows, stats


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    """One memory oracle instance plus the same instance built straight
    onto a disk engine, with the query workload compiled once."""
    data_dir = tmp_path_factory.mktemp("exp11") / "data"
    memory_db = simple_accidents(SCALE)
    disk_db = simple_accidents(
        SCALE, backend_factory=disk_backend_factory(data_dir))
    queries = accident_queries(memory_db)
    plans = compile_plans(memory_db, queries)
    return {
        "data_dir": data_dir,
        "memory_db": memory_db,
        "disk_db": disk_db,
        "plans": plans,
    }


def reopen(setup) -> Database:
    """Close whatever holds the data directory and recover it."""
    setup["disk_db"].backend.close()
    memory_db = setup["memory_db"]
    db = Database(memory_db.schema, memory_db.access_schema,
                  backend=DiskBackend(memory_db.schema, setup["data_dir"]))
    setup["disk_db"] = db
    return db


@pytest.mark.bench_correctness
def test_identical_answers_and_accounting_across_media_and_restart(
        setup, log):
    memory_db, disk_db = setup["memory_db"], setup["disk_db"]
    plans = setup["plans"]
    reference, ref_stats = run_all(Executor(memory_db), plans)
    disk_answers, disk_stats = run_all(Executor(disk_db), plans)

    assert disk_answers == reference
    assert disk_stats.index_lookups == ref_stats.index_lookups
    assert disk_stats.tuples_fetched == ref_stats.tuples_fetched

    generations = {name: disk_db.generation(name)
                   for name in memory_db.schema.relation_names()}
    recovered = reopen(setup)
    assert recovered.summary() == memory_db.summary()
    for name, generation in generations.items():
        assert recovered.generation(name) == generation
    recovered_answers, recovered_stats = run_all(Executor(recovered), plans)
    assert recovered_answers == reference
    assert recovered_stats.index_lookups == ref_stats.index_lookups
    assert recovered_stats.tuples_fetched == ref_stats.tuples_fetched

    log.row("")
    log.row(f"identity: {len(plans)} queries bit-identical on "
            "memory / disk / recovered-disk "
            f"({ref_stats.index_lookups} lookups, "
            f"{ref_stats.tuples_fetched} tuples everywhere)")
    log.metric("db_size", memory_db.size())
    log.metric("index_lookups", ref_stats.index_lookups)
    log.metric("tuples_fetched", ref_stats.tuples_fetched)
    log.metric("answers_total",
               sum(len(answers) for answers in reference))


def test_cold_open_and_fetch_overhead_report(setup, log):
    memory_db = setup["memory_db"]
    schema = memory_db.schema
    data_dir = setup["data_dir"]
    plans = setup["plans"]
    size = memory_db.size()

    # -- cold open from the WAL (no snapshot yet) -------------------------
    setup["disk_db"].backend.close()

    def cold_open():
        backend = DiskBackend(schema, data_dir)
        rows = sum(backend.relation_size(name)
                   for name in schema.relation_names())
        backend.close()
        return rows

    wal_s, wal_rows = timed(cold_open, repeat=OPEN_REPEAT)
    assert wal_rows == size  # completeness is a hard (counter) claim

    # -- cold open from a snapshot ---------------------------------------
    compacting = DiskBackend(schema, data_dir)
    compacting.snapshot()
    compacting.close()
    snap_s, snap_rows = timed(cold_open, repeat=OPEN_REPEAT)
    assert snap_rows == size

    # -- index rebuild (attach) on a recovered engine --------------------
    recovered = reopen(setup)
    attach_s, _ = timed(
        lambda: recovered.attach_access_schema(memory_db.access_schema),
        repeat=OPEN_REPEAT)

    # -- read-path overhead: replay real fetch batches -------------------
    recorder = RecordingExecutor(memory_db)
    for _, plan in plans:
        recorder.execute(plan)
    batches = recorder.batches
    memory_s, (memory_rows, _) = timed(
        lambda: replay(Executor(memory_db), batches), repeat=FETCH_REPEAT)
    disk_s, (disk_rows, _) = timed(
        lambda: replay(Executor(recovered), batches), repeat=FETCH_REPEAT)
    assert [frozenset(batch) for batch in disk_rows] == \
        [frozenset(batch) for batch in memory_rows]
    overhead = disk_s / max(memory_s, 1e-9)

    log.row("")
    log.row(f"-- cold open (|D| = {size} rows, best of {OPEN_REPEAT}) --")
    log.table(
        ["recovery path", "time", "rows/s"],
        [["WAL replay", f"{wal_s * 1e3:.1f}ms",
          f"{size / max(wal_s, 1e-9):,.0f}"],
         ["snapshot segments", f"{snap_s * 1e3:.1f}ms",
          f"{size / max(snap_s, 1e-9):,.0f}"],
         ["index rebuild (attach)", f"{attach_s * 1e3:.1f}ms", "-"]])
    log.row(f"fetch overhead, disk vs memory, replaying "
            f"{len(batches)} real batches: {overhead:.2f}x "
            "(read path is the same in-memory indexes; report-only)")
    log.metric("rows_recovered", size)
    log.metric("cold_open_wal_ms", round(wal_s * 1e3, 3))
    log.metric("cold_open_snapshot_ms", round(snap_s * 1e3, 3))
    log.metric("attach_index_build_ms", round(attach_s * 1e3, 3))
    log.metric("fetch_overhead_disk_vs_memory_ratio", round(overhead, 3))
    # The recovered engine's own tallies (snapshot rows loaded, WAL
    # tail replayed, torn bytes skipped), mirrored through the storage
    # collector so BENCH_exp-11.json diffs the recovery trajectory
    # under the same repro_storage_* names `repro stats` exposes.
    registry = MetricsRegistry()
    attach_storage_collector(registry, recovered.backend)
    log.metric("observability", registry.as_flat_dict())
    recovered.backend.close()
