"""EXP-12 — process-parallel sharded storage over the encoded boundary.

Not a paper experiment: this measures the PR 8 ``procshard`` backend —
shard worker *processes* behind the encoded fetch boundary, plus
WAL-shipped read replicas.  The paper's bounded-evaluation contract is
what makes the topology cheap to cross: a fetch batch ships as
``(constraint id, encoded X-key codes)`` and comes back as flat
``array('q')`` code columns, so the per-row IPC cost is 8 bytes per
column, not a pickled value tuple.  Claims checked:

* replaying 1M+-row synthetic fetch traffic, the **procshard encoded
  boundary (4 workers) is >= 2x faster than the single-process
  ``MemoryBackend`` per-x-value boundary** producing the same
  deliverable — one ``db.fetch`` call per X-value plus the
  encode-and-transpose into the flat code columns the columnar
  executor consumes (the baseline EXP-10's encoded gate replays),
  now held across a process hop (hard ``min_value`` trajectory
  gate); the raw tuple-fetch ratio rides along warn-only;
* the IPC toll is reported honestly: procshard vs the same encoded
  replay on an in-process ``MemoryBackend``
  (``procshard_ipc_overhead_ratio``, warn-only wall-clock — on one
  box the hop can only cost; the win is cores and isolation);
* fetched rows and ``|D_Q|`` accounting are **bit-identical** on every
  path, end-to-end answers included — process fan-out changes
  topology, never answers (``bench_correctness``);
* the RPC ledger is deterministic: logical bytes shipped/received and
  request counts are pure functions of the replayed traffic, recorded
  as hard counter metrics;
* a writer + replica fleet under a fresh write serves reads that are
  identical to the writer's, with the staleness check forcing
  catch-up first (the standalone CI smoke, no 1M fixture needed).

Run with ``python -m pytest benchmarks/bench_exp12_procshard.py -x -q``.
"""

from __future__ import annotations

import random

import pytest

from repro import is_boundedly_evaluable
from repro.engine import optimize
from repro.engine.executor import (AccessStats, Executor,
                                   LegacyTupleExecutor)
from repro.obs import MetricsRegistry
from repro.query import parse_query
from repro.schema.access import AccessConstraint, AccessSchema
from repro.schema.relation import Schema
from repro.storage.database import Database
from repro.storage.procshard import ProcessShardedBackend
from repro.storage.statistics import TableStatistics

from _harness import ExperimentLog, timed, timed_median

#: |R| = N_KEYS * GROUP_SIZE rows — the ISSUE's 1M+ floor.
N_KEYS = 150_000
GROUP_SIZE = 7
WORKERS = 4
N_BATCHES = 40
KEYS_PER_BATCH = 1_500
#: Best-of repeats; the fixture is big, so keep the multiplier small.
BOUNDARY_REPEAT = 3
E2E_REPEAT = 3
N_QUERIES = 8
BOUND = 16
MIN_PROCSHARD_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-12", "process-sharded storage over the encoded boundary")
    yield experiment
    experiment.flush()


class PerValueExecutor(LegacyTupleExecutor):
    """The PR 2 stack, preserved as the baseline: one ``db.fetch``
    round-trip (and its accounting) per distinct X-value, on the tuple
    executor — same baseline EXP-10 replays."""

    def _fetch_flat(self, constraint, x_values, stats):
        out_rows = []
        for x_value in x_values:
            fetched = self.db.fetch(constraint, x_value)
            stats.index_lookups += 1
            stats.tuples_fetched += len(fetched)
            out_rows.extend(fetched)
        return out_rows


# -- workload -----------------------------------------------------------------


def build_schema():
    schema = Schema.from_dict({"R": ("A", "B", "C")})
    aschema = AccessSchema(
        schema, [AccessConstraint("R", ("A",), ("B", "C"), BOUND)])
    return schema, aschema


def synthetic_rows(n_keys: int, group_size: int) -> list[tuple]:
    """``n_keys`` X-groups of ``group_size`` distinct rows.  Values are
    strings, as in the paper's real datasets (dates, ids, names): the
    value-space baseline pays string hashing and comparison per
    lookup, while the encoded paths ship nothing but int codes — the
    dictionary trade this whole repo is built on.  B and C reuse
    values across groups so the code space stays small and shared."""
    return [(f"k{key}", f"b{(key * 31 + j) % 50_000}", f"c{j}")
            for key in range(n_keys) for j in range(group_size)]


def fetch_traffic(constraint, rng: random.Random):
    """Synthetic bounded-plan traffic: batches of distinct X-keys, the
    shape ``_fetch_flat_encoded`` sees from specialized fetch steps."""
    return [(constraint,
             [(f"k{key}",)
              for key in rng.sample(range(N_KEYS), KEYS_PER_BATCH)])
            for _ in range(N_BATCHES)]


def point_queries(rng: random.Random):
    return [(f"group[{key}]",
             f"Q(b, c) :- R(a, b, c), a = 'k{key}'")
            for key in rng.sample(range(N_KEYS), N_QUERIES)]


# -- replay helpers (the EXP-10 boundary idiom) -------------------------------


def replay_per_value(executor, batches):
    stats = AccessStats()
    replayed = [executor._fetch_flat(constraint, x_values, stats)
                for constraint, x_values in batches]
    return replayed, stats


def replay_per_value_columns(executor, batches):
    """The PR 2 boundary made to produce what the columnar executor
    actually consumes: one ``db.fetch`` per X-value, then
    dictionary-encode and transpose the value tuples into flat code
    columns — the same deliverable-matched baseline EXP-10's encoded
    gate replays (``replay_columnarized``), on the per-value loop."""
    stats = AccessStats()
    encode_row = executor.db.dictionary.encode_row
    out = []
    for constraint, x_values in batches:
        rows = executor._fetch_flat(constraint, x_values, stats)
        coded = list(map(encode_row, rows))
        out.append((list(zip(*coded)), len(coded)))
    return out, stats


def encode_batches(db, batches):
    """Value-space batches translated into the code-space keys the
    specialized fetch closures issue (bare codes for scalar X)."""
    encode = db.dictionary.encode
    return [(constraint, [encode(x_value[0]) for x_value in x_values])
            for constraint, x_values in batches]


def replay_encoded(executor, coded_batches):
    stats = AccessStats()
    out = [executor._fetch_flat_encoded(constraint, keys, stats)
           for constraint, keys in coded_batches]
    return out, stats


def decoded_multisets(db, encoded_out):
    """Encoded replay output decoded back to sorted value-row lists,
    one per batch.  Row order inside a flat batch is storage-layout
    dependent (procshard concatenates per-worker parts), so multiset
    identity is the meaningful comparison."""
    decode_rows = db.dictionary.decode_rows
    return [sorted(decode_rows(cols, length))
            for cols, length in encoded_out]


# -- plan + execution helpers -------------------------------------------------


def compile_plans(db, queries):
    statistics = TableStatistics.from_database(db)
    plans = []
    for label, text in queries:
        decision = is_boundedly_evaluable(parse_query(text),
                                          db.access_schema)
        assert decision.is_yes, f"{label} must be bounded: {decision.reason}"
        plans.append((label, optimize(decision.witness["plan"], statistics)))
    return plans


def run_all(executor, plans):
    stats = AccessStats()
    answers = []
    for _, plan in plans:
        result = executor.execute(plan)
        stats.merge(result.stats)
        answers.append(result.answers)
    return answers, stats


# -- the boundary benchmark (the asserted claim) ------------------------------


def run_boundary(db, proc, batches, log, failures):
    per_value_executor = PerValueExecutor(db)
    memory_executor = Executor(db)
    proc_executor = Executor(proc)
    coded_mem = encode_batches(db, batches)
    coded_proc = encode_batches(proc, batches)

    per_value_s, (per_value_out, per_value_stats) = timed(
        lambda: replay_per_value(per_value_executor, batches),
        repeat=BOUNDARY_REPEAT)
    columns_s, (columns_out, columns_stats) = timed(
        lambda: replay_per_value_columns(per_value_executor, batches),
        repeat=BOUNDARY_REPEAT)
    encoded_s, (encoded_out, encoded_stats) = timed(
        lambda: replay_encoded(memory_executor, coded_mem),
        repeat=BOUNDARY_REPEAT)
    proc_s, (proc_out, proc_stats) = timed(
        lambda: replay_encoded(proc_executor, coded_proc),
        repeat=BOUNDARY_REPEAT)

    # Bit-identical rows, batch for batch, on every path, and identical
    # |D_Q| accounting.  Violations are collected here and asserted in
    # the bench_correctness test.
    reference = [sorted(batch) for batch in per_value_out]
    for path_name, decoded in (
            ("memory/per-value+encode", decoded_multisets(db, columns_out)),
            ("memory/encoded", decoded_multisets(db, encoded_out)),
            (f"procshard[{WORKERS}]/encoded",
             decoded_multisets(proc, proc_out))):
        if decoded != reference:
            failures.append(f"{path_name}: fetched rows differ")
    for path_name, stats in (
            ("memory/per-value+encode", columns_stats),
            ("memory/encoded", encoded_stats),
            (f"procshard[{WORKERS}]/encoded", proc_stats)):
        if (stats.index_lookups != per_value_stats.index_lookups
                or stats.tuples_fetched != per_value_stats.tuples_fetched):
            failures.append(
                f"{path_name}: accounting differs "
                f"({stats.index_lookups}/{stats.tuples_fetched} vs "
                f"{per_value_stats.index_lookups}/"
                f"{per_value_stats.tuples_fetched})")

    x_total = sum(len(x_values) for _, x_values in batches)
    tuples = per_value_stats.tuples_fetched
    # The gated claim is deliverable-matched: since PR 7 the executor
    # consumes flat code columns, so the single-process per-value
    # boundary must encode and transpose what it fetched before a plan
    # can run on it — the exact baseline EXP-10's encoded gate uses.
    speedup = columns_s / max(proc_s, 1e-9)
    tuple_ratio = per_value_s / max(proc_s, 1e-9)
    ipc_ratio = proc_s / max(encoded_s, 1e-9)
    log.row("")
    log.row(f"-- boundary: {len(batches)} fetch batches, {x_total} "
            f"X-keys, {tuples} tuples out of |R| = {db.size()} "
            f"(best of {BOUNDARY_REPEAT}) --")
    log.table(
        ["boundary", "time", "rows/sec"],
        [["memory/per-value, tuples out (PR 2)",
          f"{per_value_s * 1e3:.2f}ms",
          f"{int(tuples / max(per_value_s, 1e-9)):,}"],
         ["memory/per-value + encode, columns out",
          f"{columns_s * 1e3:.2f}ms",
          f"{int(tuples / max(columns_s, 1e-9)):,}"],
         ["memory/encoded", f"{encoded_s * 1e3:.2f}ms",
          f"{int(tuples / max(encoded_s, 1e-9)):,}"],
         [f"procshard[{WORKERS}]/encoded", f"{proc_s * 1e3:.2f}ms",
          f"{int(tuples / max(proc_s, 1e-9)):,}"]])
    log.row(f"procshard vs per-value columns boundary: {speedup:.1f}x "
            f"(vs raw tuple fetch: {tuple_ratio:.1f}x); IPC toll vs "
            f"in-process encoded: {ipc_ratio:.1f}x "
            "(one hop, one box — the hop can only cost here)")
    log.metric("procshard_boundary_speedup", round(speedup, 2))
    log.metric("procshard_vs_tuple_fetch_ratio", round(tuple_ratio, 2))
    log.metric("procshard_ipc_overhead_ratio", round(ipc_ratio, 2))
    log.metric("per_value_boundary_ms", round(per_value_s * 1e3, 3))
    log.metric("per_value_columns_boundary_ms", round(columns_s * 1e3, 3))
    log.metric("memory_encoded_boundary_ms", round(encoded_s * 1e3, 3))
    log.metric("procshard_boundary_ms", round(proc_s * 1e3, 3))
    log.metric("boundary_x_keys", x_total)
    log.metric("boundary_tuples", tuples)
    log.gate("procshard_boundary_speedup",
             min_value=MIN_PROCSHARD_SPEEDUP)
    return speedup, (proc_executor, coded_proc)


def rpc_ledger(proc, proc_executor, coded_proc, log):
    """One extra replay with the RPC counters bracketed: logical bytes
    (key and result codes x 8) and request counts are deterministic
    functions of the traffic — hard trajectory counters, unlike any
    wall-clock number this file emits."""
    before = dict(proc.backend.counters())
    replay_encoded(proc_executor, coded_proc)
    after = proc.backend.counters()
    delta = {key: after[key] - before.get(key, 0)
             for key in ("rpc_requests_total", "rpc_bytes_shipped_total",
                         "rpc_bytes_received_total", "worker_reads_total")}
    log.row("")
    log.row("-- RPC ledger for one replay (logical bytes: codes x 8, "
            "deterministic) --")
    log.table(["counter", "per replay"],
              [[key, f"{value:,}"] for key, value in delta.items()])
    return delta


# -- the end-to-end comparison (identity + reported win) ----------------------


def run_end_to_end(db, proc, plans, log, failures):
    configs = [
        ("memory/per-value", PerValueExecutor(db)),
        ("memory/columnar", Executor(db)),
        (f"procshard[{WORKERS}]/columnar", Executor(proc)),
    ]
    rows = []
    timings = {}
    baseline_answers = baseline_stats = None
    for config_name, executor in configs:
        seconds, (answers, stats) = timed_median(
            lambda executor=executor: run_all(executor, plans),
            repeat=E2E_REPEAT)
        timings[config_name] = seconds
        if baseline_answers is None:
            baseline_answers, baseline_stats = answers, stats
        else:
            if answers != baseline_answers:
                failures.append(f"{config_name}: answers differ")
            if (stats.index_lookups != baseline_stats.index_lookups
                    or stats.tuples_fetched
                    != baseline_stats.tuples_fetched):
                failures.append(
                    f"{config_name}: end-to-end accounting differs")
        rows.append([config_name, f"{seconds * 1e3:.2f}ms",
                     stats.index_lookups, stats.tuples_fetched])

    speedup = timings["memory/per-value"] / max(
        timings[f"procshard[{WORKERS}]/columnar"], 1e-9)
    log.row("")
    log.row(f"-- end-to-end: {len(plans)} point queries on |R| = "
            f"{db.size()} (median of {E2E_REPEAT}) --")
    log.table(["config", "time", "index lookups", "tuples fetched"], rows)
    log.row(f"procshard end-to-end vs PR 2 stack: {speedup:.2f}x "
            "(point fetches — the boundary, not the joins, is the hop)")
    log.metric("end_to_end_procshard_vs_per_value_ratio",
               round(speedup, 2))
    log.metric("end_to_end_median_ms", {
        config: round(seconds * 1e3, 3)
        for config, seconds in timings.items()})
    log.metric("end_to_end_tuples_fetched", baseline_stats.tuples_fetched)
    log.metric("end_to_end_index_lookups", baseline_stats.index_lookups)
    return baseline_stats


def registry_dump(stats: AccessStats, ledger: dict,
                  dictionary_entries: int) -> dict:
    """The access accounting and the RPC ledger mirrored through a
    :class:`~repro.obs.metrics.MetricsRegistry`, so BENCH_exp-12.json
    carries the same metric names a scraped procshard service exposes."""
    registry = MetricsRegistry()
    registry.counter("repro_fetch_calls_total").set_total(stats.fetch_calls)
    registry.counter(
        "repro_index_lookups_total").set_total(stats.index_lookups)
    registry.counter(
        "repro_tuples_fetched_total").set_total(stats.tuples_fetched)
    for key, value in ledger.items():
        registry.counter(f"repro_storage_{key}").set_total(value)
    registry.gauge(
        "repro_storage_dictionary_entries").set(dictionary_entries)
    return registry.as_flat_dict()


@pytest.fixture(scope="module")
def measured(log):
    """The 1M+-row workload, measured once; identity violations are
    collected for the bench_correctness test, wall-clock ratios for the
    (noisy, continue-on-error-smoked) speedup test."""
    failures: list[str] = []
    schema, aschema = build_schema()
    db = Database(schema)
    db.insert_many("R", synthetic_rows(N_KEYS, GROUP_SIZE))
    db.attach_access_schema(aschema)
    # fanout_threshold=0: every encoded fetch crosses the process
    # boundary — this benchmark must price the hop, not dodge it.
    proc = db.with_backend(ProcessShardedBackend(
        schema, workers=WORKERS, fanout_threshold=0))
    try:
        constraint = next(iter(aschema))
        batches = fetch_traffic(constraint, random.Random(12))
        speedup, (proc_executor, coded_proc) = run_boundary(
            db, proc, batches, log, failures)
        ledger = rpc_ledger(proc, proc_executor, coded_proc, log)
        plans = compile_plans(db, point_queries(random.Random(34)))
        e2e_stats = run_end_to_end(db, proc, plans, log, failures)

        totals = AccessStats()
        totals.merge(e2e_stats)
        log.metric("rows_total", db.size())
        log.metric("observability",
                   registry_dump(totals, ledger, len(db.dictionary)))
        gauges = proc.backend.gauges()
        log.row("")
        log.row(f"gauges: dictionary {gauges['dictionary_bytes']:,} bytes, "
                f"{gauges['workers_alive']} workers alive")
        log.row("")
        log.row(f"claim: procshard[{WORKERS}] over the encoded boundary "
                f">= {MIN_PROCSHARD_SPEEDUP:.0f}x vs the single-process "
                "per-x-value boundary (columns deliverable) at 1M+ rows.")
        log.row(f"measured: {speedup:.1f}x")
    finally:
        proc.backend.close()
    return {"failures": failures, "speedup": speedup}


@pytest.mark.bench_correctness
def test_identical_rows_and_accounting_on_every_path(measured):
    assert not measured["failures"], measured["failures"][:5]


def test_procshard_boundary_speedup(measured):
    """The encoded RPC boundary must beat the PR 2 per-x-value boundary
    by >= 2x at 1M+ rows — also enforced as a min_value trajectory
    gate on BENCH_exp-12.json."""
    assert measured["speedup"] >= MIN_PROCSHARD_SPEEDUP, \
        f"procshard boundary: only {measured['speedup']:.1f}x"


# -- replica smoke (standalone: CI runs this without the 1M fixture) ----------


SMOKE_KEYS = 120


@pytest.mark.bench_correctness
def test_procshard_replica_smoke(tmp_path):
    """2 workers + 1 WAL-shipped replica on a small load: every
    round-robin slot must serve reads identical to a MemoryBackend
    oracle, across a write that leaves the replica stale (forcing a
    WAL catch-up before it may serve again)."""
    schema, aschema = build_schema()
    backend = ProcessShardedBackend(
        schema, workers=2, replicas=1,
        data_dir=tmp_path / "shard", fanout_threshold=0)
    db = Database(schema, backend=backend)
    oracle = Database(schema)
    try:
        rounds = [synthetic_rows(SMOKE_KEYS, 3),
                  [(f"k{key}", f"b{key + 7}", "c5")
                   for key in range(SMOKE_KEYS)]]
        db.insert_many("R", rounds[0])
        oracle.insert_many("R", rounds[0])
        db.attach_access_schema(aschema)
        oracle.attach_access_schema(aschema)
        constraint = next(iter(aschema))
        keys = [(f"k{key}",) for key in range(0, SMOKE_KEYS, 3)]

        for round_no, fresh_rows in enumerate((None, rounds[1])):
            if fresh_rows is not None:
                db.insert_many("R", fresh_rows)
                oracle.insert_many("R", fresh_rows)
            expected = sorted(oracle.backend.fetch_flat(constraint, keys))
            # One fetch per round-robin slot (writer + workers, replica).
            for _ in range(1 + backend.workers + backend.replicas):
                coded = [db.dictionary.encode(key[0]) for key in keys]
                cols, length = db.fetch_flat_encoded(constraint, coded)
                decoded = sorted(db.dictionary.decode_rows(cols, length))
                assert decoded == expected, f"round {round_no}: rows differ"

        counters = backend.counters()
        assert counters["replica_reads_total"] > 0, \
            "the replica never served a read"
        assert counters["replica_catchups_total"] >= 1, \
            "the stale replica was never caught up over the WAL"
        assert backend.gauges()["replicas_alive"] == 1
    finally:
        backend.close()
        oracle.backend.close()
