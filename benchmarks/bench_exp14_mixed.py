"""EXP-14 — mixed read/write traffic: incremental cache maintenance.

Not a paper experiment: this measures the write story the ROADMAP adds
on top of the reproduction.  Before PR 10 every write bumped the
written relation's generation and thereby cold-started the *entire*
fetch cache for that relation; under even 10% writes a serving tier
spent most of its time re-fetching entries whose content the writes
never touched.  With incremental maintenance the backend surfaces a
per-write delta (exactly which distinct projections appeared or
disappeared, per attached constraint) and the fetch cache applies it to
the directly addressed entries, leaving every other entry warm.

Claims checked here:

* under a mixed workload with **10% writes**, the fetch-cache hit rate
  stays **>= 60%** (hard trajectory floor) on the memory *and* the disk
  engine — where the invalidate-on-write design measured here as the
  detached baseline collapses;
* answers served through maintained caches are **bit-identical** to a
  cold uncached service and to the naive scan evaluator, for every
  binding, *after* all the writes have landed;
* p95 request latency under writes is reported for the trajectory
  record (warn-only: wall clock).

Run with ``python -m pytest benchmarks/bench_exp14_mixed.py -x -q``.
"""

from __future__ import annotations

import random
import statistics

import pytest

from repro.engine.naive import evaluate_cq
from repro.query import parse_cq
from repro.service import BoundedQueryService
from repro.storage.disk import disk_backend_factory
from repro.workload.accidents import AccidentScale, simple_accidents

from _harness import ExperimentLog

TEMPLATE = ("Q(xa) :- Accident(aid, d, t), Casualty(cid, aid, cl, vid), "
            "Vehicle(vid, dri, xa), d = $district, t = $date")

SCALE = AccidentScale(days=90, max_accidents_per_day=30)
REQUESTS = 400
DISTINCT_BINDINGS = 16
WRITE_FRACTION = 0.10


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-14", "mixed read/write traffic: incremental cache maintenance")
    yield experiment
    experiment.flush()


def bound_text(binding) -> str:
    return (f"Q(xa) :- Accident(aid, '{binding['district']}', "
            f"'{binding['date']}'), Casualty(cid, aid, cl, vid), "
            "Vehicle(vid, dri, xa)")


def run_mixed(db, *, write_fraction: float, maintained: bool = True):
    """Drive one mixed read/write loop against a fresh service.

    Writes rotate over all three relations the template reads: insert a
    brand-new casualty (fresh cid, random existing accident and
    vehicle), or rewrite (delete + reinsert) one existing accident or
    vehicle row.  Every write bumps its relation's generation; the
    rewrites leave the instance's *content* unchanged, which is exactly
    the traffic incremental maintenance wins on — the deltas cancel in
    place, while invalidate-on-write cold-starts the whole relation.
    With ``maintained=False`` the service's fetch cache is detached
    from the delta stream first, reproducing the pre-maintenance
    invalidate-on-write behaviour as a baseline.
    """
    service = BoundedQueryService(db)
    if not maintained:
        service.fetch_cache.detach_maintenance()
    service.register_template("drivers", TEMPLATE)

    rng = random.Random(14)
    accidents = db.relation_tuples("Accident")
    vehicles = db.relation_tuples("Vehicle")
    casualties = db.relation_tuples("Casualty")
    next_cid = 0
    classes = sorted({row[2] for row in casualties})
    pool = [{"district": row[1], "date": row[2]}
            for row in rng.sample(accidents, DISTINCT_BINDINGS)]

    for binding in pool:  # prime
        service.execute_template("drivers", binding)

    before = service.stats().fetch_cache
    latencies = []
    writes = 0
    for _ in range(REQUESTS):
        if rng.random() < write_fraction:
            kind = rng.randrange(3)
            if kind == 0:
                row = (f"c-new-{next_cid}", rng.choice(accidents)[0],
                       rng.choice(classes), rng.choice(vehicles)[0])
                db.insert("Casualty", row)
                next_cid += 1
            elif kind == 1:
                row = rng.choice(accidents)
                db.delete("Accident", row)
                db.insert("Accident", row)
            else:
                row = rng.choice(vehicles)
                db.delete("Vehicle", row)
                db.insert("Vehicle", row)
            writes += 1
        result = service.execute_template("drivers", rng.choice(pool))
        latencies.append(result.latency_s)
    after = service.stats().fetch_cache

    hits = after.hits - before.hits
    misses = after.misses - before.misses
    latencies.sort()
    return {
        "service": service,
        "pool": pool,
        "writes": writes,
        "hit_rate": hits / max(hits + misses, 1),
        "p50_ms": statistics.median(latencies) * 1e3,
        "p95_ms": latencies[min(len(latencies) - 1,
                                int(len(latencies) * 0.95))] * 1e3,
    }


@pytest.fixture(scope="module")
def mixed(log, tmp_path_factory):
    """The measured runs: maintained memory + disk, and the detached
    (invalidate-on-write) memory baseline for contrast."""
    runs = {}
    databases = {}

    databases["memory"] = simple_accidents(SCALE)
    runs["memory"] = run_mixed(databases["memory"],
                               write_fraction=WRITE_FRACTION)

    data_dir = tmp_path_factory.mktemp("exp14-disk")
    databases["disk"] = simple_accidents(
        SCALE, backend_factory=disk_backend_factory(data_dir))
    runs["disk"] = run_mixed(databases["disk"],
                             write_fraction=WRITE_FRACTION)

    baseline_db = simple_accidents(SCALE)
    baseline = run_mixed(baseline_db, write_fraction=WRITE_FRACTION,
                         maintained=False)

    log.row("")
    log.table(
        ["run", "writes", "hit rate", "p50", "p95"],
        [[label, run["writes"], f"{run['hit_rate']:.1%}",
          f"{run['p50_ms']:.3f}ms", f"{run['p95_ms']:.3f}ms"]
         for label, run in
         list(runs.items()) + [("memory, invalidate-on-write", baseline)]])
    for label, run in runs.items():
        cache = run["service"].fetch_cache
        log.row(f"{label}: {cache.maintained_deltas} deltas applied in "
                f"place ({cache.maintained_entries} entries updated), "
                f"{cache.maintenance_fallbacks} fallbacks")
    log.row("")
    log.row(f"claim: fetch-cache hit rate stays >= 60% at "
            f"{WRITE_FRACTION:.0%} writes (invalidate-on-write drops "
            f"to {baseline['hit_rate']:.1%}).")
    log.row(f"measured: memory {runs['memory']['hit_rate']:.1%}, "
            f"disk {runs['disk']['hit_rate']:.1%}")

    log.metric("write_fraction", WRITE_FRACTION)
    log.metric("requests", REQUESTS)
    for label, run in runs.items():
        log.metric(f"hit_rate_10pct_writes_{label}",
                   round(run["hit_rate"], 4))
        log.metric(f"p95_ms_{label}", round(run["p95_ms"], 4))
        cache = run["service"].fetch_cache
        log.metric(f"maintained_deltas_{label}", cache.maintained_deltas)
        log.metric(f"maintenance_fallbacks_{label}",
                   cache.maintenance_fallbacks)
    log.metric("hit_rate_invalidate_on_write",
               round(baseline["hit_rate"], 4))
    # Hard floors: the fresh hit rate alone must clear them, baseline
    # or not — this is the PR's headline claim.
    log.gate("hit_rate_10pct_writes_memory", min_value=0.6)
    log.gate("hit_rate_10pct_writes_disk", min_value=0.6)

    yield {"runs": runs, "databases": databases, "baseline": baseline}
    databases["disk"].backend.close()


@pytest.mark.bench_correctness
def test_maintained_answers_bit_identical(mixed):
    """After all writes have landed, every binding's answer through the
    maintained caches equals a cold uncached service's and the naive
    scan evaluator's — on both engines."""
    for label, run in mixed["runs"].items():
        db = mixed["databases"][label]
        cold_service = BoundedQueryService(db)
        for binding in run["pool"]:
            warm = run["service"].execute_template("drivers", binding)
            cold = cold_service.execute(bound_text(binding))
            naive = evaluate_cq(parse_cq(bound_text(binding)), db)
            assert warm.answers == cold.answers == naive, (label, binding)
            assert warm.bounded and cold.bounded


@pytest.mark.bench_correctness
def test_maintenance_keeps_cache_warm_under_writes(mixed):
    for label, run in mixed["runs"].items():
        assert run["hit_rate"] >= 0.6, (label, run["hit_rate"])
        assert run["writes"] > 0
        assert run["service"].fetch_cache.maintained_deltas > 0, label
    # The contrast that motivates the tentpole: the detached baseline
    # must do measurably worse than the maintained runs.
    assert (mixed["baseline"]["hit_rate"]
            < mixed["runs"]["memory"]["hit_rate"])
