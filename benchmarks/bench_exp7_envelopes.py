"""EXP-7 — Section 4 / Examples 4.1 and 4.5: boundedly evaluable
envelopes and their accuracy bounds, verified on data.

For Q1 of Example 4.1 (bounded but not boundedly evaluable) we build
the covered upper and lower envelopes and check, on generated instances
satisfying A, the sandwich ``Ql(D) ⊆ Q(D) ⊆ Qu(D)`` with
``|Qu(D) − Q(D)| ≤ Nu`` and ``|Q(D) − Ql(D)| ≤ Nl``.  For Q2 (not
bounded) no envelope exists (Lemma 4.2).  Example 4.5's split-based
lower envelope is exercised too.
"""

from __future__ import annotations

import random

import pytest

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.core import lower_envelope, upper_envelope
from repro.engine import evaluate, execute_plan
from repro.query import parse_cq

from _harness import ExperimentLog, timed


def example41_world(n_rows: int, bound: int = 3, seed: int = 1):
    schema = Schema.from_dict({"R": ("A", "B")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), bound)])
    db = Database(schema, access)
    rng = random.Random(seed)
    fanout: dict[int, set] = {}
    values = list(range(1, max(8, n_rows // 2)))
    while db.size() < n_rows:
        a, b = rng.choice(values), rng.choice(values)
        group = fanout.setdefault(a, set())
        if b in group or len(group) >= bound:
            continue
        group.add(b)
        db.insert("R", (a, b))
    db.check()
    return schema, access, db


Q1_TEXT = "Q1(x) :- R(w, x), R(y, w), R(x, z), w = 1"


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-7", "envelope construction and accuracy bounds (Section 4)")
    yield experiment
    experiment.flush()


def test_upper_envelope_construction(benchmark):
    _, access, _ = example41_world(50)
    q1 = parse_cq(Q1_TEXT)
    decision = benchmark(lambda: upper_envelope(q1, access))
    assert decision


def test_lower_envelope_construction(benchmark):
    _, access, _ = example41_world(50)
    q1 = parse_cq(Q1_TEXT)
    decision = benchmark(lambda: lower_envelope(q1, access, k=2))
    assert decision


def test_report(benchmark, log):
    schema, access, _ = example41_world(60)
    q1 = parse_cq(Q1_TEXT)
    up_time, up = timed(lambda: upper_envelope(q1, access))
    low_time, low = timed(lambda: lower_envelope(q1, access, k=2))
    assert up and low
    upper = up.witness
    lower = low.witness

    rows = []
    worst_upper_slack = worst_lower_slack = 0
    for seed in range(6):
        _, _, db = example41_world(60, seed=seed)
        exact = evaluate(q1, db)
        upper_answers = execute_plan(upper.plan, db).answers
        lower_answers = execute_plan(lower.plan, db).answers
        assert lower_answers <= exact <= upper_answers
        upper_slack = len(upper_answers - exact)
        lower_slack = len(exact - lower_answers)
        assert upper_slack <= upper.bound
        assert lower_slack <= lower.bound
        worst_upper_slack = max(worst_upper_slack, upper_slack)
        worst_lower_slack = max(worst_lower_slack, lower_slack)
        rows.append([seed, len(exact), len(lower_answers),
                     len(upper_answers), lower_slack, upper_slack])
    log.row("")
    log.row(f"Q1 (Example 4.1): upper = {upper.query}")
    log.row(f"                  lower = {lower.query}")
    log.row(f"bounds: Nu = {upper.bound}, Nl = {lower.bound}; "
            f"construction: {up_time * 1e3:.1f}ms / {low_time * 1e3:.1f}ms")
    log.table(["instance", "|Q(D)|", "|Ql(D)|", "|Qu(D)|",
               "lower slack", "upper slack"], rows)
    log.row(f"worst observed slack: lower {worst_lower_slack} <= "
            f"Nl={lower.bound}; upper {worst_upper_slack} <= "
            f"Nu={upper.bound}")

    # Q2 has no envelopes (Lemma 4.2).
    q2 = parse_cq("Q2(x, y) :- R(w, x), R(y, w), w = 1")
    assert upper_envelope(q2, access).is_no
    assert lower_envelope(q2, access).is_no
    log.row("Q2 (Example 4.1): no upper and no lower envelope "
            "(not bounded; Lemma 4.2) — reproduced.")

    # Example 4.5: split-based lower envelope.
    schema45 = Schema.from_dict({"R": ("A", "B", "C")})
    access45 = AccessSchema(schema45, [
        AccessConstraint("R", ("A",), ("B",), 4),
        AccessConstraint("R", ("B",), ("C",), 1)])
    q45 = parse_cq("Q(x, y) :- R(u, x, y), u = 1")
    split = lower_envelope(q45, access45, k=2)
    assert split
    log.row(f"Example 4.5: lower envelope via atom split: "
            f"{split.witness.query} — reproduced.")
    benchmark(lambda: None)
