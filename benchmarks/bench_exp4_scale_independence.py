"""EXP-4 — Section 2: bounded evaluability means ``|D_Q|`` — the data
identified and fetched — is determined by Q and A only, independent of
|D|.

Four covered queries over the accident data at five sizes.  Expected
shape: the tuples-fetched series is flat (within the noise of data
skew) and always below the plan's static certificate, while the
baseline's scanned-tuples series is exactly |D|-linear.
"""

from __future__ import annotations

import pytest

from repro.core import analyze_coverage
from repro.engine import (ScanStats, build_bounded_plan, evaluate_cq,
                          execute_plan, static_bounds)
from repro.query import parse_cq
from repro.workload import AccidentScale, canonical_access_schema, \
    simple_accidents

from _harness import ExperimentLog

DAY_COUNTS = [30, 90, 270, 810, 1620]

QUERIES = {
    "q0": ("Q0(xa) :- Accident(aid, 'Queens Park', '{date}'), "
           "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)"),
    "districts_of_day": ("Qd(d) :- Accident(aid, d, t), t = '{date}'"),
    "vehicles_of_day": ("Qc(vid) :- Accident(aid, d, t), t = '{date}', "
                        "Casualty(cid, aid, cl, vid)"),
    "drivers_of_day": ("Qv(dr) :- Accident(aid, d, t), t = '{date}', "
                       "Casualty(cid, aid, cl, vid), "
                       "Vehicle(vid, dr, age)"),
}


@pytest.fixture(scope="module")
def worlds():
    return {days: simple_accidents(
        AccidentScale(days=days, max_accidents_per_day=30))
        for days in DAY_COUNTS}


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-4", "|D_Q| independent of |D| (scale independence)")
    yield experiment
    experiment.flush()


@pytest.mark.parametrize("query_name", list(QUERIES))
def test_bounded_access_is_flat(benchmark, worlds, query_name, log):
    access = canonical_access_schema()
    fetched_series = []
    scanned_series = []
    sizes = []
    for days, db in worlds.items():
        date = db.relation_tuples("Accident")[0][2]
        q = parse_cq(QUERIES[query_name].format(date=date))
        coverage = analyze_coverage(q, access)
        assert coverage.is_covered
        plan = build_bounded_plan(coverage)
        result = execute_plan(plan, db)
        scan = ScanStats()
        assert result.answers == evaluate_cq(q, db, scan)
        assert result.stats.tuples_fetched <= \
            static_bounds(plan).fetch_bound
        fetched_series.append(result.stats.tuples_fetched)
        scanned_series.append(scan.tuples_scanned)
        sizes.append(db.size())

    log.row("")
    log.row(f"{query_name}: |D| = {sizes}")
    log.row(f"  bounded fetched : {fetched_series}   <- flat")
    log.row(f"  baseline scanned: {scanned_series}   <- linear in |D|")

    # Flatness: fetched varies only with the day's skew, never with |D|.
    assert max(fetched_series) <= 3 * max(min(fetched_series), 1)
    # Baseline linearity: scanning grows with the data.
    assert scanned_series[-1] >= 10 * scanned_series[0]

    db = worlds[DAY_COUNTS[-1]]
    date = db.relation_tuples("Accident")[0][2]
    q = parse_cq(QUERIES[query_name].format(date=date))
    plan = build_bounded_plan(analyze_coverage(q, access))
    benchmark(lambda: execute_plan(plan, db))
