"""EXP-10 — storage engines: vectorized fetch boundary vs. per-value loop.

Not a paper experiment: this measures the pluggable storage-engine
refactor.  The paper's whole point is that a covered query touches a
bounded fragment ``D_Q`` through access-constraint indexes; before this
refactor the batch executor still crossed the storage boundary one
X-value at a time (a Python-level ``db.fetch`` loop in
``executor._run_fetch``).  Claims checked:

* replaying the *exact fetch batches* real accidents/social query
  traffic issues, the **sharded backend answering one vectorized
  ``fetch_many`` per batch is >= 2x faster** than the PR 2 per-x-value
  boundary (one ``db.fetch`` call per X-value), with bit-identical
  rows from both backends;
* end-to-end query answers are **bit-identical** on every
  (backend, boundary) pair, and the access accounting is *identical*
  everywhere: same index lookups (one per distinct X-value), same
  tuples fetched — vectorization and sharding change topology, never
  ``|D_Q|``;
* the end-to-end win of the vectorized boundary is reported alongside
  (joins and gathers bound it below the boundary-level speedup);
* replaying the same traffic in *code space*, pre-encoded column
  fetches (``fetch_flat_encoded``) beat tuple fetch + per-batch
  dictionary encoding by **>= 3x** (hard ``min_value`` gate);
  dictionary sizes and encode/decode times ride along as recorded
  metrics.

Run with ``python -m pytest benchmarks/bench_exp10_storage.py -x -q``.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import is_boundedly_evaluable
from repro.engine import optimize
from repro.engine.executor import (AccessStats, Executor,
                                   LegacyTupleExecutor)
from repro.obs import MetricsRegistry
from repro.query import parse_query
from repro.storage.backend import ShardedBackend
from repro.storage.statistics import TableStatistics
from repro.workload.accidents import AccidentScale, simple_accidents
from repro.workload.social import CITIES, SocialScale, relational_social

from _harness import ExperimentLog, timed, timed_median

REPEAT = 5
BOUNDARY_REPEAT = 15
MIN_SPEEDUP = 2.0
#: Pre-encoded column fetches vs tuple fetch + per-batch encoding on
#: the same replayed traffic (the PR 7 columnar boundary claim).
MIN_ENCODED_SPEEDUP = 3.0
SHARDS = 8


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-10", "storage engines: vectorized fetch_many vs per-x fetch")
    yield experiment
    experiment.flush()


class PerValueExecutor(LegacyTupleExecutor):
    """The PR 2 stack, preserved as the baseline: tuple batches end to
    end, with one ``db.fetch`` round-trip (and its accounting) per
    distinct X-value.  Must stay on the tuple executor — the columnar
    ``Executor.execute`` never touches ``_fetch_flat``, so basing this
    on it would silently benchmark nothing."""

    def _fetch_flat(self, constraint, x_values, stats):
        out_rows = []
        for x_value in x_values:
            fetched = self.db.fetch(constraint, x_value)
            stats.index_lookups += 1
            stats.tuples_fetched += len(fetched)
            out_rows.extend(fetched)
        return out_rows


class RecordingExecutor(LegacyTupleExecutor):
    """Harvests the (constraint, x-value batch) pairs a plan issues, so
    the boundary benchmark replays *real* traffic, not synthetic keys.
    Rides the tuple executor for the same reason as above; the
    columnar path issues the same batches in code space (the
    accounting identity the correctness test enforces)."""

    def __init__(self, db):
        super().__init__(db)
        self.batches: list[tuple[object, list[tuple]]] = []

    def _fetch_flat(self, constraint, x_values, stats):
        self.batches.append((constraint, list(x_values)))
        return super()._fetch_flat(constraint, x_values, stats)


# -- workloads ----------------------------------------------------------------


def accident_workload():
    # Busy days, as in the paper's real dataset (up to 610 accidents per
    # day): each day-query fans out to hundreds of casualty/vehicle
    # lookups, which is exactly the fetch-heavy regime the vectorized
    # boundary is for.
    db = simple_accidents(AccidentScale(days=60, max_accidents_per_day=200))
    rng = random.Random(10)
    dates = sorted({row[2] for row in db.relation_tuples("Accident")})
    queries = [
        (f"drivers-on[{date}]",
         f"Q(xa) :- Accident(aid, d, t), Casualty(cid, aid, cl, vid), "
         f"Vehicle(vid, dri, xa), t = '{date}'")
        for date in rng.sample(dates, 8)
    ]
    return db, queries


def social_workload():
    db = relational_social(SocialScale(persons=2500))
    rng = random.Random(31)
    people = sorted({row[0] for row in db.relation_tuples("Friend")})
    queries = []
    for me in rng.sample(people, 8):
        city = rng.choice(CITIES)
        queries.append((
            f"fof[{me}]",
            f"Q(g) :- Friend(me, f), Friend(f, g), LivesIn(g, c), "
            f"me = '{me}', c = '{city}'"))
    return db, queries


# -- plan + execution helpers -------------------------------------------------


def compile_plans(db, queries):
    statistics = TableStatistics.from_database(db)
    plans = []
    for label, text in queries:
        decision = is_boundedly_evaluable(parse_query(text),
                                          db.access_schema)
        assert decision.is_yes, f"{label} must be bounded: {decision.reason}"
        plans.append((label, optimize(decision.witness["plan"], statistics)))
    return plans


def run_all(executor, plans):
    stats = AccessStats()
    answers = []
    for _, plan in plans:
        result = executor.execute(plan)
        stats.merge(result.stats)
        answers.append(result.answers)
    return answers, stats


# -- the boundary benchmark (the asserted claim) ------------------------------


def replay(executor, batches):
    """Re-issue the harvested batches through the executor's *actual*
    storage-boundary hook, accounting included — exactly what each
    boundary shape costs inside a real plan execution."""
    stats = AccessStats()
    replayed = [executor._fetch_flat(constraint, x_values, stats)
                for constraint, x_values in batches]
    return replayed, stats


def encode_batches(db, batches):
    """The harvested value-space batches translated into the code-space
    keys the specialized fetch closures issue (bare codes for scalar X,
    code tuples otherwise)."""
    encode = db.dictionary.encode
    coded = []
    for constraint, x_values in batches:
        if len(constraint.x) == 1:
            keys = [encode(x_value[0]) for x_value in x_values]
        else:
            keys = [tuple(encode(value) for value in x_value)
                    for x_value in x_values]
        coded.append((constraint, keys))
    return coded


def replay_columnarized(executor, batches):
    """What the columnar operators would pay per batch *without*
    insert-time encoding: fetch value tuples, then dictionary-encode
    and transpose them into code columns."""
    stats = AccessStats()
    encode_row = executor.db.dictionary.encode_row
    out = []
    for constraint, x_values in batches:
        rows = executor._fetch_flat(constraint, x_values, stats)
        coded = list(map(encode_row, rows))
        out.append((list(zip(*coded)), len(coded)))
    return out, stats


def replay_encoded(executor, coded_batches):
    """The PR 7 boundary: pre-encoded column slices straight out of
    the access indexes, no per-batch encoding at all."""
    stats = AccessStats()
    out = [executor._fetch_flat_encoded(constraint, keys, stats)
           for constraint, keys in coded_batches]
    return out, stats


def run_encoded_boundary(name, db, batches, log, failures):
    executor = Executor(db)
    coded_batches = encode_batches(db, batches)
    legacy_s, (legacy_out, legacy_stats) = timed(
        lambda: replay_columnarized(executor, batches),
        repeat=BOUNDARY_REPEAT)
    encoded_s, (encoded_out, encoded_stats) = timed(
        lambda: replay_encoded(executor, coded_batches),
        repeat=BOUNDARY_REPEAT)

    # Same rows and same |D_Q| accounting, batch for batch — the
    # dictionary is a bijection, so decoding must restore exactly the
    # value tuples the tuple path fetched.
    dictionary = db.dictionary
    decode_s = 0.0
    for (legacy_cols, n_rows), (cols, length) in zip(legacy_out,
                                                     encoded_out):
        start = time.perf_counter()
        decoded = dictionary.decode_rows(cols, length)
        decode_s += time.perf_counter() - start
        if (length != n_rows
                or decoded != dictionary.decode_rows(legacy_cols,
                                                     n_rows)):
            failures.append(
                f"{name}/encoded-boundary: decoded rows differ")
            break
    if (encoded_stats.index_lookups != legacy_stats.index_lookups
            or encoded_stats.tuples_fetched
            != legacy_stats.tuples_fetched):
        failures.append(
            f"{name}/encoded-boundary: accounting differs "
            f"({encoded_stats.index_lookups}/"
            f"{encoded_stats.tuples_fetched} vs "
            f"{legacy_stats.index_lookups}/"
            f"{legacy_stats.tuples_fetched})")

    speedup = legacy_s / max(encoded_s, 1e-9)
    tuples = encoded_stats.tuples_fetched
    log.row("")
    log.row(f"-- {name} columnar boundary: tuple fetch + encode vs "
            f"pre-encoded columns ({tuples} tuples, best of "
            f"{BOUNDARY_REPEAT}) --")
    log.table(["boundary", "time", "rows/sec"],
              [["tuple fetch + encode", f"{legacy_s * 1e3:.2f}ms",
                f"{int(tuples / max(legacy_s, 1e-9)):,}"],
               ["pre-encoded columns", f"{encoded_s * 1e3:.2f}ms",
                f"{int(tuples / max(encoded_s, 1e-9)):,}"]])
    log.row(f"encoded boundary speedup: {speedup:.1f}x "
            f"(decode of all fetched rows: {decode_s * 1e3:.2f}ms, "
            f"dictionary: {len(dictionary)} entries)")
    log.metric(f"{name}_encoded_boundary_speedup", round(speedup, 2))
    log.metric(f"{name}_encoded_boundary_ms", round(encoded_s * 1e3, 3))
    log.metric(f"{name}_encode_overhead_ms",
               round((legacy_s - encoded_s) * 1e3, 3))
    log.metric(f"{name}_decode_time_ms", round(decode_s * 1e3, 3))
    log.metric(f"{name}_dictionary_size", len(dictionary))
    log.gate(f"{name}_encoded_boundary_speedup",
             min_value=MIN_ENCODED_SPEEDUP)
    return speedup


def run_boundary(name, db, sharded, plans, log, failures):
    recorder = RecordingExecutor(db)
    for _, plan in plans:
        recorder.execute(plan)
    batches = recorder.batches
    x_total = sum(len(x_values) for _, x_values in batches)

    paths = {
        "memory/per-value": PerValueExecutor(db),
        "memory/vectorized": Executor(db),
        f"sharded[{SHARDS}]/per-value": PerValueExecutor(sharded),
        f"sharded[{SHARDS}]/vectorized": Executor(sharded),
    }
    timings = {}
    replays = {}
    for path_name, executor in paths.items():
        seconds, (rows, stats) = timed(
            lambda executor=executor: replay(executor, batches),
            repeat=BOUNDARY_REPEAT)
        timings[path_name] = seconds
        replays[path_name] = (rows, stats)

    # Bit-identical fetch results, batch for batch, on every path (row
    # order within a batch is storage-layout dependent and carries no
    # meaning under set semantics — compare as sets), and identical
    # |D_Q| accounting.  Violations are collected here and asserted in
    # the bench_correctness test.
    def canonical(replayed):
        return [frozenset(batch) for batch in replayed]

    reference, ref_stats = replays["memory/per-value"]
    for path_name, (rows, stats) in replays.items():
        if canonical(rows) != canonical(reference):
            failures.append(f"{name}/{path_name}: fetched rows differ")
        if (stats.index_lookups != ref_stats.index_lookups
                or stats.tuples_fetched != ref_stats.tuples_fetched):
            failures.append(
                f"{name}/{path_name}: accounting differs "
                f"({stats.index_lookups}/{stats.tuples_fetched} vs "
                f"{ref_stats.index_lookups}/{ref_stats.tuples_fetched})")
    tuples = sum(len(batch) for batch in reference)

    # The asserted claim: on each backend, the vectorized boundary vs
    # the per-x-value boundary on that same backend.
    memory_speedup = (timings["memory/per-value"]
                      / max(timings["memory/vectorized"], 1e-9))
    sharded_speedup = (timings[f"sharded[{SHARDS}]/per-value"]
                       / max(timings[f"sharded[{SHARDS}]/vectorized"], 1e-9))
    # Reported: the whole new stack against the whole PR 2 stack.
    cross = (timings["memory/per-value"]
             / max(timings[f"sharded[{SHARDS}]/vectorized"], 1e-9))
    log.row("")
    log.row(f"-- {name} boundary: {len(batches)} fetch batches, "
            f"{x_total} X-values, {tuples} tuples "
            f"(best of {BOUNDARY_REPEAT}) --")
    log.table(
        ["boundary", "time", "per X-value"],
        [[path_name, f"{seconds * 1e3:.2f}ms",
          f"{seconds / x_total * 1e6:.2f}us"]
         for path_name, seconds in timings.items()])
    log.row(f"vectorized vs per-value: memory {memory_speedup:.1f}x, "
            f"sharded {sharded_speedup:.1f}x "
            f"(sharded/vectorized vs PR 2 stack: {cross:.1f}x)")
    log.metric(f"{name}_boundary_speedup_memory", round(memory_speedup, 2))
    log.metric(f"{name}_boundary_speedup_sharded", round(sharded_speedup, 2))
    log.metric(f"{name}_boundary_speedup_vs_pr2_stack", round(cross, 2))
    log.metric(f"{name}_boundary_best_ms", {
        path_name: round(seconds * 1e3, 3)
        for path_name, seconds in timings.items()})
    log.metric(f"{name}_boundary_x_values", x_total)
    log.metric(f"{name}_boundary_tuples", tuples)
    return memory_speedup, sharded_speedup, batches


# -- the end-to-end comparison (identity + reported win) ----------------------


def run_end_to_end(name, db, sharded, pooled, plans, log, failures):
    configs = [
        ("memory/per-value", PerValueExecutor(db)),
        ("memory/vectorized", Executor(db)),
        ("sharded/vectorized", Executor(sharded)),
        (f"sharded/pool[{SHARDS}]", Executor(pooled)),
    ]
    rows = []
    timings = {}
    baseline_answers = baseline_stats = None
    for config_name, executor in configs:
        seconds, (answers, stats) = timed_median(
            lambda executor=executor: run_all(executor, plans),
            repeat=REPEAT)
        timings[config_name] = seconds
        if baseline_answers is None:
            baseline_answers, baseline_stats = answers, stats
        else:
            # Bit-identical answers and identical |D_Q| accounting on
            # every backend and boundary shape.
            if answers != baseline_answers:
                failures.append(f"{name}/{config_name}: answers differ")
            if (stats.index_lookups != baseline_stats.index_lookups
                    or stats.tuples_fetched
                    != baseline_stats.tuples_fetched):
                failures.append(
                    f"{name}/{config_name}: end-to-end accounting differs")
        rows.append([config_name, f"{seconds * 1e3:.2f}ms",
                     stats.index_lookups, stats.tuples_fetched])

    speedup = timings["memory/per-value"] / max(
        timings["sharded/vectorized"], 1e-9)
    log.row("")
    log.row(f"-- {name} end-to-end (|D| = {db.size()}, {len(plans)} "
            f"queries, median of {REPEAT}) --")
    log.table(["config", "time", "index lookups", "tuples fetched"], rows)
    log.row(f"end-to-end (includes joins/gathers): {speedup:.2f}x")
    log.metric(f"{name}_end_to_end_speedup", round(speedup, 2))
    log.metric(f"{name}_end_to_end_median_ms", {
        config: round(seconds * 1e3, 3)
        for config, seconds in timings.items()})
    log.metric(f"{name}_tuples_fetched", baseline_stats.tuples_fetched)
    log.metric(f"{name}_index_lookups", baseline_stats.index_lookups)
    return speedup, baseline_stats


def run_workload(name, db, queries, log, failures):
    sharded = db.with_backend(ShardedBackend(db.schema, shards=SHARDS))
    pooled = db.with_backend(
        ShardedBackend(db.schema, shards=SHARDS, workers=SHARDS))
    plans = compile_plans(db, queries)
    mem_speedup, shard_speedup, batches = run_boundary(
        name, db, sharded, plans, log, failures)
    encoded = run_encoded_boundary(name, db, batches, log, failures)
    end_to_end, stats = run_end_to_end(name, db, sharded, pooled, plans,
                                       log, failures)
    pooled.backend.close()
    return (mem_speedup, shard_speedup), encoded, end_to_end, stats


def registry_dump(stats: AccessStats) -> dict:
    """The workloads' access accounting mirrored through a
    :class:`~repro.obs.metrics.MetricsRegistry`, so BENCH_exp-10.json
    carries the same metric names (per-op batch counts included) a
    scraped service exposes."""
    registry = MetricsRegistry()
    registry.counter("repro_fetch_calls_total").set_total(stats.fetch_calls)
    registry.counter(
        "repro_index_lookups_total").set_total(stats.index_lookups)
    registry.counter(
        "repro_tuples_fetched_total").set_total(stats.tuples_fetched)
    ops = registry.counter("repro_executor_ops_total",
                           label_names=("op",))
    for op, count in sorted(stats.op_counts.items()):
        ops.labels(op=op).set_total(count)
    return registry.as_flat_dict()


@pytest.fixture(scope="module")
def measured(log):
    """Both workloads, measured once; identity violations are collected
    for the bench_correctness test, wall-clock ratios for the (noisy,
    continue-on-error-smoked) speedup test."""
    failures: list[str] = []
    accidents_db, accidents_queries = accident_workload()
    (acc_mem, acc_shard), acc_enc, acc_e2e, acc_stats = run_workload(
        "accidents", accidents_db, accidents_queries, log, failures)

    social, social_queries_ = social_workload()
    (soc_mem, soc_shard), soc_enc, soc_e2e, soc_stats = run_workload(
        "social", social, social_queries_, log, failures)

    totals = AccessStats()
    totals.merge(acc_stats)
    totals.merge(soc_stats)
    log.metric("observability", registry_dump(totals))

    log.row("")
    log.row("claim: one vectorized fetch_many per fetch batch is >= 2x "
            "faster than the PR 2 per-x-value boundary, on both "
            "backends, replaying the batches real traffic issues.")
    log.row(f"measured: accidents memory {acc_mem:.1f}x / sharded "
            f"{acc_shard:.1f}x (end-to-end {acc_e2e:.2f}x), social "
            f"memory {soc_mem:.1f}x / sharded {soc_shard:.1f}x "
            f"(end-to-end {soc_e2e:.2f}x)")
    return {"failures": failures,
            "boundary": [("accidents memory", acc_mem),
                         ("accidents sharded", acc_shard),
                         ("social memory", soc_mem),
                         ("social sharded", soc_shard)],
            "encoded": [("accidents", acc_enc), ("social", soc_enc)],
            "end_to_end": [("accidents", acc_e2e), ("social", soc_e2e)]}


@pytest.mark.bench_correctness
def test_identical_rows_and_accounting_on_every_path(measured):
    assert not measured["failures"], measured["failures"][:5]


def test_vectorized_sharded_speedup(measured):
    for label, speedup in measured["boundary"]:
        assert speedup >= MIN_SPEEDUP, \
            f"{label} boundary: only {speedup:.1f}x"
    # Vectorization must also be a clear end-to-end win, not just a
    # microbench one (joins/gathers put ~2x out of reach here).
    for label, speedup in measured["end_to_end"]:
        assert speedup >= 1.1, f"{label} end-to-end: only {speedup:.2f}x"


def test_encoded_boundary_speedup(measured):
    """Pre-encoded column fetches must beat tuple fetch + per-batch
    dictionary encoding by >= 3x on replayed real traffic — the PR 7
    columnar claim, also enforced as a min_value trajectory gate."""
    for label, speedup in measured["encoded"]:
        assert speedup >= MIN_ENCODED_SPEEDUP, \
            f"{label} encoded boundary: only {speedup:.1f}x"
