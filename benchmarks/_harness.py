"""Shared helpers for the benchmark suite.

Every experiment writes the rows it reproduces into
``benchmarks/results/<exp_id>.txt`` (and prints them when pytest runs
with ``-s``), so EXPERIMENTS.md can be checked against fresh numbers.

Experiments can additionally record *machine-readable* numbers with
:meth:`ExperimentLog.metric`; ``flush`` then writes them to
``benchmarks/results/BENCH_<exp_id>.json`` so the perf trajectory
(medians, speedups, tuples fetched, ...) can be diffed across PRs
instead of eyeballing text tables.

Setting ``BENCH_RESULTS_DIR`` redirects all outputs (text and JSON)
to that directory: CI's trajectory job writes *fresh* numbers there
and diffs them against the committed ``benchmarks/results`` baselines
without ever dirtying the checked-out tree it is diffing.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import time
from typing import Callable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def results_dir() -> pathlib.Path:
    """Where outputs land: ``$BENCH_RESULTS_DIR`` if set (read per
    flush, so tests can monkeypatch it), else the committed baseline
    directory."""
    override = os.environ.get("BENCH_RESULTS_DIR")
    return pathlib.Path(override) if override else RESULTS_DIR


class ExperimentLog:
    """Collects printable rows (and metrics) for one experiment."""

    def __init__(self, exp_id: str, title: str):
        self.exp_id = exp_id
        self.title = title
        self.lines: list[str] = [f"{exp_id}: {title}", "=" * 72]
        self.metrics: dict[str, object] = {}
        self.gates: dict[str, dict] = {}

    def row(self, text: str) -> None:
        self.lines.append(text)
        print(text)

    def table(self, headers: list[str], rows: list[list]) -> None:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
                  for i, h in enumerate(headers)] if rows else \
                 [len(str(h)) for h in headers]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.row(fmt.format(*headers))
        self.row(fmt.format(*("-" * w for w in widths)))
        for r in rows:
            self.row(fmt.format(*(str(c) for c in r)))

    def metric(self, name: str, value) -> None:
        """Record one machine-readable number (float/int/str/dict/list)
        for the JSON artifact."""
        self.metrics[name] = value

    def gate(self, metric_path: str, *,
             max_increase_pct: float | None = None,
             min_value: float | None = None) -> None:
        """Declare a *hard* trajectory gate on one metric path.

        Written into the JSON artifact as ``gates``;
        ``check_trajectory.py`` then FAILs (not warns) when the fresh
        value exceeds the committed baseline by more than
        ``max_increase_pct`` percent — even for wall-clock metrics,
        which are otherwise warn-only — or when it falls below the
        absolute floor ``min_value`` (checked against the fresh value
        alone, so floor gates hold even for brand-new metrics with no
        baseline).  Declare wall-clock gates only where the baseline
        is regenerated on comparable hardware.
        """
        gate: dict = {}
        if max_increase_pct is not None:
            gate["max_increase_pct"] = max_increase_pct
        if min_value is not None:
            gate["min_value"] = min_value
        if not gate:
            raise ValueError(
                "gate() needs max_increase_pct and/or min_value")
        self.gates[metric_path] = gate

    def flush(self) -> None:
        out_dir = results_dir()
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"{self.exp_id.lower()}.txt"
        path.write_text("\n".join(self.lines) + "\n")
        if self.metrics:  # experiments without metric() calls stay text-only
            payload = {"experiment": self.exp_id, "title": self.title,
                       "metrics": self.metrics}
            if self.gates:
                payload["gates"] = self.gates
            json_path = out_dir / f"BENCH_{self.exp_id.lower()}.json"
            json_path.write_text(json.dumps(
                payload, indent=2, sort_keys=True, default=str) + "\n")


def timed(fn: Callable, repeat: int = 1) -> tuple[float, object]:
    """Wall-clock one callable; returns (best seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def timed_median(fn: Callable, repeat: int = 5) -> tuple[float, object]:
    """Wall-clock one callable; returns (median seconds, last result)."""
    samples = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result
