"""Shared helpers for the benchmark suite.

Every experiment writes the rows it reproduces into
``benchmarks/results/<exp_id>.txt`` (and prints them when pytest runs
with ``-s``), so EXPERIMENTS.md can be checked against fresh numbers.
"""

from __future__ import annotations

import pathlib
import time
from typing import Callable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ExperimentLog:
    """Collects printable rows for one experiment and writes them out."""

    def __init__(self, exp_id: str, title: str):
        self.exp_id = exp_id
        self.title = title
        self.lines: list[str] = [f"{exp_id}: {title}", "=" * 72]

    def row(self, text: str) -> None:
        self.lines.append(text)
        print(text)

    def table(self, headers: list[str], rows: list[list]) -> None:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
                  for i, h in enumerate(headers)] if rows else \
                 [len(str(h)) for h in headers]
        fmt = "  ".join(f"{{:<{w}}}" for w in widths)
        self.row(fmt.format(*headers))
        self.row(fmt.format(*("-" * w for w in widths)))
        for r in rows:
            self.row(fmt.format(*(str(c) for c in r)))

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.exp_id.lower()}.txt"
        path.write_text("\n".join(self.lines) + "\n")


def timed(fn: Callable, repeat: int = 1) -> tuple[float, object]:
    """Wall-clock one callable; returns (best seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result
