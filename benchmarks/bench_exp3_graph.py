"""EXP-3 — Section 1 graph claims ([11]): "60% of graph pattern queries
... are boundedly evaluable under simple access constraints", and
bounded evaluation "outperforms conventional subgraph isomorphism
methods by 4 orders of magnitude on average".

Social graphs at three sizes; the Graph Search pattern ("find me all my
friends in NYC who like cycling") matched three ways: bounded plan,
edge-walking backtracker, and the conventional scan-based backtracker.
Expected shape: bounded access stays flat while the conventional
matcher's examined-candidate count grows with the graph; the gap
reaches several orders of magnitude.
"""

from __future__ import annotations

import pytest

from repro.graph import (GraphAccessStats, MatchStats, analyze_pattern,
                         bounded_match, subgraph_match)
from repro.workload import (SocialScale, generate_patterns,
                            graph_search_pattern, social_access_schema,
                            social_graph)

from _harness import ExperimentLog, timed

SIZES = {"small": 1000, "medium": 5000, "large": 20000}


@pytest.fixture(scope="module")
def worlds():
    result = {}
    for name, persons in SIZES.items():
        scale = SocialScale(persons=persons, seed=13)
        result[name] = (social_graph(scale), social_access_schema(scale),
                        scale)
    return result


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-3", "bounded pattern matching vs subgraph isomorphism")
    yield experiment
    experiment.flush()


@pytest.mark.parametrize("size", list(SIZES))
def test_bounded_pattern(benchmark, worlds, size):
    graph, access, _ = worlds[size]
    pattern = graph_search_pattern(("person", 17))
    coverage = analyze_pattern(pattern, access)
    stats = GraphAccessStats()
    matches = benchmark(lambda: bounded_match(
        pattern, graph, access, coverage=coverage, stats=stats))
    benchmark.extra_info["nodes"] = graph.num_nodes()
    assert matches == subgraph_match(pattern, graph)


@pytest.mark.parametrize("size", ["small", "medium"])
def test_conventional_pattern(benchmark, worlds, size):
    graph, _, _ = worlds[size]
    pattern = graph_search_pattern(("person", 17))
    benchmark(lambda: subgraph_match(pattern, graph, strategy="scan"))
    benchmark.extra_info["nodes"] = graph.num_nodes()


def test_report(benchmark, worlds, log):
    rows = []
    ratios = []
    for size, (graph, access, scale) in worlds.items():
        pattern = graph_search_pattern(("person", 17))
        coverage = analyze_pattern(pattern, access)
        stats = GraphAccessStats()
        bounded_time, bounded = timed(lambda: bounded_match(
            pattern, graph, access, coverage=coverage, stats=stats),
            repeat=3)
        scan_stats = MatchStats()
        scan_time, scanned = timed(lambda: subgraph_match(
            pattern, graph, stats=scan_stats, strategy="scan"))
        assert bounded == scanned
        access_ratio = (scan_stats.candidates_examined
                        / max(stats.nodes_fetched, 1))
        ratios.append(access_ratio)
        rows.append([
            size, graph.num_nodes(), graph.num_edges(),
            stats.nodes_fetched, scan_stats.candidates_examined,
            f"{access_ratio:,.0f}x",
            f"{bounded_time * 1e3:.2f}ms", f"{scan_time * 1e3:.1f}ms",
        ])
    log.row("")
    log.table(["scale", "nodes", "edges", "bounded fetched",
               "conventional examined", "access gap", "bounded t",
               "conventional t"], rows)

    # Coverage rate of a random pattern workload (paper: 60%).
    graph, access, scale = worlds["small"]
    patterns = generate_patterns(200, scale, seed=3)
    covered = sum(1 for p in patterns
                  if analyze_pattern(p, access).is_covered)
    rate = covered / len(patterns)
    log.row("")
    log.row(f"pattern workload coverage: {covered}/200 = {rate:.0%} "
            "(paper: 60%)")
    log.row(f"access gap grows with |G|: "
            f"{' -> '.join(f'{r:,.0f}x' for r in ratios)} "
            "(paper: 4 orders of magnitude on billion-node graphs)")
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1000
    assert 0.35 <= rate <= 0.85
    benchmark(lambda: None)
