"""EXP-T3 — correctness table: every worked example in the paper,
decided by this library, expected vs. got.

The same assertions live as unit tests in
``tests/integration/test_paper_examples.py``; this bench prints the
table EXPERIMENTS.md quotes and times the whole battery.
"""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Schema, Var
from repro.core import (a_contained, is_boundedly_evaluable, is_covered,
                        lower_envelope, specialize_minimally, upper_envelope)
from repro.query import parse_cq, parse_ucq
from repro.workload import canonical_access_schema

from _harness import ExperimentLog


def build_cases():
    cases = []

    access0 = canonical_access_schema()
    q0 = parse_cq("Q0(xa) :- Accident(aid, 'Queens Park', '1/5/2005'), "
                  "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)")
    cases.append(("Ex 1.1", "Q0 boundedly evaluable under ψ1–ψ4", "yes",
                  lambda: is_boundedly_evaluable(q0, access0).verdict.value))

    r1 = Schema.from_dict({"R1": ("A", "B", "E", "F")})
    a1 = AccessSchema(r1, [AccessConstraint("R1", ("A",), ("B",), 5),
                           AccessConstraint("R1", ("E",), ("F",), 5)])
    q1 = parse_cq("Q1(x, y) :- R1(x1, x, x2, y), x1 = 1, x2 = 1")
    cases.append(("Ex 3.1(1)", "Q1 boundedly evaluable", "no",
                  lambda: is_boundedly_evaluable(q1, a1).verdict.value))

    r2 = Schema.from_dict({"R2": ("A", "B")})
    a2 = AccessSchema(r2, [AccessConstraint("R2", ("A",), ("B",), 1)])
    q2 = parse_cq("Q2(x) :- R2(x, x1), R2(x, x2), x1 = 1, x2 = 2")
    cases.append(("Ex 3.1(2)", "Q2 boundedly evaluable (A-unsat)", "yes",
                  lambda: is_boundedly_evaluable(q2, a2).verdict.value))
    cases.append(("Ex 3.12", "Q2 covered", "no",
                  lambda: is_covered(q2, a2).verdict.value))

    r3 = Schema.from_dict({"R3": ("A", "B", "C")})
    a3 = AccessSchema(r3, [AccessConstraint("R3", (), ("C",), 1),
                           AccessConstraint("R3", ("A", "B"), ("C",), 5)])
    q3 = parse_cq("Q3(x, y) :- R3(x1, x2, x), R3(z1, z2, y), "
                  "R3(x, y, z3), x1 = 1, x2 = 1")
    cases.append(("Ex 3.1(3)/3.10", "Q3 covered (hence bounded)", "yes",
                  lambda: is_covered(q3, a3).verdict.value))

    s35 = Schema.from_dict({"R": ("X",), "S": ("A", "B")})
    a35 = AccessSchema(s35, [AccessConstraint("R", (), ("X",), 2)])
    q35 = parse_cq("Q(x) :- R(y1), y1 = 1, R(y2), y2 = 0, S(x, y), R(y)")
    u35 = parse_ucq("Qp(x) :- S(x, y), R(y), y = 1 ; "
                    "Qp(x) :- S(x, y), R(y), y = 0")
    cases.append(("Ex 3.5", "Q ⊑A Q1 ∪ Q2", "yes",
                  lambda: a_contained(q35, u35, a35).verdict.value))
    cases.append(("Ex 3.5", "Q ⊑A Q1 (single disjunct)", "no",
                  lambda: a_contained(q35, u35.disjuncts[0],
                                      a35).verdict.value))

    s35b = Schema.from_dict({"Rp": ("A", "B", "C")})
    a35b = AccessSchema(s35b, [AccessConstraint("Rp", ("A",), ("B",), 4)])
    u35b = parse_ucq("Q(y) :- Rp(x, y, z), x = 1 ; "
                     "Q(y) :- Rp(x, y, z), x = 1, z = y")
    cases.append(("Ex 3.5", "Q1 ∪ Q2 boundedly evaluable", "yes",
                  lambda: is_boundedly_evaluable(u35b, a35b).verdict.value))
    cases.append(("Ex 3.5", "Q2 alone boundedly evaluable", "no",
                  lambda: is_boundedly_evaluable(u35b.disjuncts[1],
                                                 a35b).verdict.value))

    s41 = Schema.from_dict({"R": ("A", "B")})
    a41 = AccessSchema(s41, [AccessConstraint("R", ("A",), ("B",), 3)])
    q41_1 = parse_cq("Q1(x) :- R(w, x), R(y, w), R(x, z), w = 1")
    q41_2 = parse_cq("Q2(x, y) :- R(w, x), R(y, w), w = 1")
    cases.append(("Ex 4.1", "Q1 has an upper envelope", "yes",
                  lambda: upper_envelope(q41_1, a41).verdict.value))
    cases.append(("Ex 4.1", "Q1 has a lower envelope", "yes",
                  lambda: lower_envelope(q41_1, a41, k=2).verdict.value))
    cases.append(("Ex 4.1", "Q2 has an upper envelope", "no",
                  lambda: upper_envelope(q41_2, a41).verdict.value))
    cases.append(("Ex 4.1", "Q2 has a lower envelope", "no",
                  lambda: lower_envelope(q41_2, a41, k=2).verdict.value))

    s45 = Schema.from_dict({"R": ("A", "B", "C")})
    a45 = AccessSchema(s45, [AccessConstraint("R", ("A",), ("B",), 4),
                             AccessConstraint("R", ("B",), ("C",), 1)])
    q45 = parse_cq("Q(x, y) :- R(u, x, y), u = 1")
    cases.append(("Ex 4.5", "split lower envelope exists (k=2)", "yes",
                  lambda: lower_envelope(q45, a45, k=2).verdict.value))

    q51 = parse_cq("Q(xa) :- Accident(aid, district, date), "
                   "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)")
    cases.append(("Ex 5.1", "Q boundedly evaluable (unspecialized)", "no",
                  lambda: is_boundedly_evaluable(q51, access0).verdict.value))
    cases.append(("Ex 5.1", "specializable with {date} (k=1)", "yes",
                  lambda: specialize_minimally(
                      q51, access0, parameters=[Var("date")],
                      k=1).verdict.value))
    cases.append(("Ex 5.1", "specializable with {district} only", "no",
                  lambda: specialize_minimally(
                      q51, access0,
                      parameters=[Var("district")]).verdict.value))
    return cases


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-T3", "every worked example of the paper, expected vs got")
    yield experiment
    experiment.flush()


def test_examples_battery(benchmark, log):
    cases = build_cases()

    def run_all():
        return [(case[0], case[1], case[2], case[3]()) for case in cases]

    results = benchmark(run_all)
    rows = []
    for example, claim, expected, got in results:
        status = "OK" if expected == got else "MISMATCH"
        rows.append([example, claim, expected, got, status])
    log.row("")
    log.table(["example", "claim", "paper", "library", ""], rows)
    mismatches = [r for r in rows if r[4] == "MISMATCH"]
    log.row("")
    log.row(f"{len(rows) - len(mismatches)}/{len(rows)} verdicts match "
            "the paper.")
    assert not mismatches
