"""EXP-5 — Section 2, general access constraints ``R(X -> Y, s(·))``.

With a non-constant cardinality bound (here ``s(n) = log2 n``), bounded
plans still "query big data by accessing a small fraction D_Q of the
data, although |D_Q| is no longer independent of |D|" (Section 2).

A follower-graph relation ``Follows(user -> follower, log2|D|)`` at
growing sizes.  Expected shape: fetched tuples grow like log |D| (the
certificate, evaluated at |D|, tracks them), while the scan baseline
stays |D|-linear.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import (AccessConstraint, AccessSchema, Database, LogCardinality,
                   Schema)
from repro.core import analyze_coverage
from repro.engine import (ScanStats, build_bounded_plan, evaluate_cq,
                          execute_plan, static_bounds)
from repro.query import parse_cq

from _harness import ExperimentLog

SIZES = [1_000, 4_000, 16_000, 64_000]


def follows_db(n_rows: int, seed: int = 3):
    schema = Schema.from_dict({"Follows": ("user", "follower")})
    # The generator caps each user's out-fanout at log2(|D|); follower
    # in-fanout is unconstrained, so only the out-direction constraint
    # is declared (the query's two hops both go forward).
    access = AccessSchema(schema, [
        AccessConstraint("Follows", ("user",), ("follower",),
                         LogCardinality()),
    ])
    db = Database(schema, access)
    rng = random.Random(seed)
    per_user = max(1, math.floor(math.log2(n_rows)) - 1)
    n_users = n_rows // per_user
    row_count = 0
    for user in range(n_users):
        for _ in range(rng.randint(1, per_user)):
            db.insert("Follows", (f"u{user}",
                                  f"u{rng.randrange(n_users)}"))
            row_count += 1
            if row_count >= n_rows:
                break
        if row_count >= n_rows:
            break
    db.check()
    return db, access


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-5", "general (non-constant) access constraints: "
        "fetched grows like s(|D|) = log2 |D|")
    yield experiment
    experiment.flush()


@pytest.mark.parametrize("n_rows", SIZES)
def test_bounded_with_log_constraint(benchmark, n_rows):
    db, access = follows_db(n_rows)
    q = parse_cq("Q(f2) :- Follows(u, f), Follows(f, f2), u = 'u0'")
    coverage = analyze_coverage(q, access)
    assert coverage.is_covered
    plan = build_bounded_plan(coverage)
    result = benchmark(lambda: execute_plan(plan, db))
    assert result.answers == evaluate_cq(q, db)
    # Certificate bound must be evaluated at |D| for general constraints.
    assert result.stats.tuples_fetched <= \
        static_bounds(plan, db_size=db.size()).fetch_bound


def test_report(benchmark, log):
    q_text = "Q(f2) :- Follows(u, f), Follows(f, f2), u = 'u0'"
    rows = []
    fetched_series = []
    for n_rows in SIZES:
        db, access = follows_db(n_rows)
        q = parse_cq(q_text)
        coverage = analyze_coverage(q, access)
        plan = build_bounded_plan(coverage)
        result = execute_plan(plan, db)
        scan = ScanStats()
        assert result.answers == evaluate_cq(q, db, scan)
        bound = static_bounds(plan, db_size=db.size()).fetch_bound
        fetched_series.append(result.stats.tuples_fetched)
        rows.append([db.size(), math.ceil(math.log2(db.size())),
                     result.stats.tuples_fetched, bound,
                     scan.tuples_scanned])
    log.row("")
    log.table(["|D|", "log2|D|", "fetched", "certificate s(|D|)-bound",
               "baseline scanned"], rows)
    log.row("")
    log.row("shape: fetched grows ~ polylog(|D|) (two log-bounded hops), "
            "a vanishing fraction of |D|; the scan stays linear.")
    # Sub-linear growth: 64x more data, far less than 64x more fetched.
    growth = fetched_series[-1] / max(fetched_series[0], 1)
    assert growth < (SIZES[-1] / SIZES[0]) / 4
    benchmark(lambda: None)
