"""EXP-T2 — Table 1, rows "UCQ"/"∃FO+": CQP/UEP/QSP are Πp2-complete,
LEP stays NP (UCQ) / DP (∃FO+).

The Πp2 flavour shows up as the *subsumption* check: deciding whether an
uncovered CQ sub-query is answered by the covered ones requires
enumerating its A-instances (the ∀ layer) and evaluating the union on
each (the ∃ layer).  The sweep grows the number of disjuncts and the
uncovered sub-query's variable count and watches the cost climb, while
the per-disjunct PTIME coverage check stays flat.
"""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Schema
from repro.core import (Budget, is_boundedly_evaluable, is_covered,
                        lower_envelope, specialize_minimally)
from repro.query import parse_ucq

from _harness import ExperimentLog, timed


def world():
    schema = Schema.from_dict({"Rp": ("A", "B", "C")})
    access = AccessSchema(schema, [
        AccessConstraint("Rp", ("A",), ("B",), 4)])
    return schema, access


def subsumption_union(extra_bound_vars: int) -> "UCQ":
    """Q1 covered; Q2 uncovered but subsumed (Example 3.5 pattern),
    with ``extra_bound_vars`` inflating Q2's A-instance space."""
    extra = "".join(f", Rp(x, w{i}, u{i})" for i in range(extra_bound_vars))
    return parse_ucq(
        "Q(y) :- Rp(x, y, z), x = 1 ; "
        f"Q(y) :- Rp(x, y, z), x = 1, z = y{extra}")


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-T2", "Table 1 / UCQ and EFO+ rows: Pi^p_2 subsumption vs "
        "per-disjunct PTIME")
    yield experiment
    experiment.flush()


@pytest.mark.parametrize("extra", [0, 1, 2])
def test_cqp_ucq_scaling(benchmark, extra):
    _, access = world()
    union = subsumption_union(extra)
    decision = benchmark(lambda: is_covered(union, access,
                                            Budget(10 ** 7)))
    assert decision


@pytest.mark.parametrize("disjuncts", [2, 4, 8])
def test_bep_ucq_all_covered(benchmark, disjuncts):
    """When every disjunct is covered, UCQ analysis stays PTIME-ish."""
    _, access = world()
    text = " ; ".join(f"Q(y) :- Rp(x, y, z), x = {i}"
                      for i in range(disjuncts))
    union = parse_ucq(text)
    decision = benchmark(lambda: is_boundedly_evaluable(union, access))
    assert decision


def test_report(benchmark, log):
    _, access = world()
    rows = []
    for extra in (0, 1, 2):
        union = subsumption_union(extra)
        q2 = union.disjuncts[1]
        elapsed, decision = timed(lambda: is_covered(
            union, access, Budget(10 ** 7)))
        assert decision
        rows.append([f"+{extra} vars in the uncovered disjunct",
                     len(q2.variables()), f"{elapsed * 1e3:.1f}ms"])
    log.row("")
    log.row("CQP(UCQ) (Πp2-c): subsumption cost vs A-instance space of "
            "the uncovered sub-query:")
    log.table(["uncovered disjunct", "variables", "time"], rows)

    rows = []
    for disjuncts in (2, 4, 8, 16):
        text = " ; ".join(f"Q(y) :- Rp(x, y, z), x = {i}"
                          for i in range(disjuncts))
        union = parse_ucq(text)
        elapsed, decision = timed(lambda: is_boundedly_evaluable(
            union, access))
        assert decision
        rows.append([disjuncts, f"{elapsed * 1e3:.1f}ms"])
    log.row("")
    log.row("BEP(UCQ) with all-covered disjuncts — linear in the number "
            "of disjuncts (the expensive layer never fires):")
    log.table(["disjuncts", "time"], rows)

    # LEP(UCQ) is NP-complete — per-disjunct expansion search.
    schema = Schema.from_dict({"R": ("A", "B")})
    acc = AccessSchema(schema, [AccessConstraint("R", ("A",), ("B",), 3)])
    union = parse_ucq(
        "Q(x) :- R(w, x), R(y, w), R(x, z), w = 1 ; "
        "Q(x) :- R(w, x), R(y, w), R(x, z), w = 2")
    lep_t, lep = timed(lambda: lower_envelope(union, acc, k=2))
    assert lep
    log.row("")
    log.row(f"LEP(UCQ) (NP-c): union expansion search {lep_t * 1e3:.1f}ms")

    # QSP(UCQ) is Πp2-complete — subsets x parameter checks.
    qsp_union = parse_ucq("Q(y) :- R(x, y) ; Q(y) :- R(y, c), c = 1")
    qsp_t, qsp = timed(lambda: specialize_minimally(qsp_union, acc))
    assert qsp
    log.row(f"QSP(UCQ) (Πp2-c): parameter search {qsp_t * 1e3:.1f}ms")
    benchmark(lambda: None)
