"""EXP-13 — the resilient serving tier under closed-loop load.

Not a paper experiment: this measures the PR 9 serving tier
(``repro.serve``) — certificate-gated admission control, bounded
thread-pool execution, shed-on-overload — the way a latency SLO would:
closed-loop clients at increasing offered load, per-response latency
percentiles, and the one claim worth gating:

* **admitted p99 stays bounded under overload**: at 2x-capacity
  offered load the p99 of *admitted* (200) responses must stay within
  ``P99_BOUND_FACTOR`` x the uncontended p99, because the admission
  gate fires on the dispatching side — work past (workers +
  queue_depth) is shed with 429 + ``Retry-After`` instead of queueing
  unboundedly (hard ``min_value`` gate on the boolean
  ``p99_bounded``; the raw latency numbers ride along warn-only);
* the contrast is reported honestly: the same overload against a
  server with an effectively unbounded queue (``queue_depth`` huge, so
  nothing sheds) shows the latency an admissionless tier would serve
  (report-only — it is the *motivation*, not a gate);
* every admitted response is **bit-identical** to a pure-Python oracle
  of the workload, shedding or not — load changes scheduling, never
  answers — and overload must actually shed (``bench_correctness``);
* the default tenant's metrics exposition carries the serve-tier
  families (inflight gauge, shed/admitted counters) after the storm.

The load generator drives :meth:`ReproServer.submit` — the exact
dispatch path the asyncio loop uses (gate on the calling thread, heavy
work on the pool) — so the numbers price admission + compile + execute
without socket jitter; the byte-level HTTP surface is covered by
``tests/serve`` and the CI serve-smoke job.

Run with ``python -m pytest benchmarks/bench_exp13_serving.py -x -q``.
"""

from __future__ import annotations

import json
import random
import statistics
import threading
import time

import pytest

from repro.obs.export import render_exposition
from repro.obs.metrics import MetricsRegistry
from repro.schema.relation import Schema
from repro.schema.access import AccessConstraint, AccessSchema
from repro.serve import ReproServer, Request, ServerConfig
from repro.storage.database import Database

from _harness import ExperimentLog

#: Groups deliberately wide, so per-request service time (decode +
#: project + render 128 answers) dominates the constant dispatch
#: overheads; keyspace deliberately *smaller* than the service's
#: fetch cache (4096 entries) and fully warmed before measuring, so
#: service time is unimodal — a bimodal hit/miss mix would make p99
#: measure cache-miss patterns instead of queueing.
N_KEYS = 3_000
GROUP_SIZE = 128
BOUND = 128
#: A deliberately tight tier, so 2x capacity is cheap to offer: one
#: executor thread (the GIL makes more workers inflate, not hide,
#: queueing on one box) and one waiting slot.
WORKERS = 1
QUEUE_DEPTH = 1
CAPACITY = WORKERS + QUEUE_DEPTH
REQUESTS_PER_CLIENT = 600
#: Clients honor Retry-After in spirit: a short back-off on 429, so a
#: shed client does not busy-spin the GIL away from admitted work.
SHED_BACKOFF_S = 0.002
P99_BOUND_FACTOR = 3.0
#: Per-response latencies are sub-millisecond, so a single OS
#: scheduling blip lands squarely in a round's p99 tail; every load
#: level therefore reports its best-of-N round — the same best-of
#: idiom ``_harness.timed`` uses for exactly this reason.
ROUNDS = 3


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-13", "resilient serving tier under closed-loop load")
    yield experiment
    experiment.flush()


# -- workload -----------------------------------------------------------------


def synthetic_rows() -> list[tuple]:
    return [(f"k{key}", f"b{(key * 31 + j) % 900}", f"c{j}")
            for key in range(N_KEYS) for j in range(GROUP_SIZE)]


def build_database() -> Database:
    schema = Schema.from_dict({"R": ("A", "B", "C")})
    db = Database(schema)
    db.insert_many("R", synthetic_rows())
    db.attach_access_schema(AccessSchema(
        schema, [AccessConstraint("R", ("A",), ("B", "C"), BOUND)]))
    return db


def oracle_answers(rows: list[tuple]) -> dict[str, list[list[str]]]:
    """Ground truth for ``Q(b, c) :- R(a, b, c), a = $key``, computed
    in pure Python: the engine never gets to grade its own homework."""
    expected: dict[str, set] = {}
    for a, b, c in rows:
        expected.setdefault(a, set()).add((b, c))
    return {key: sorted([list(answer) for answer in answers],
                        key=repr)
            for key, answers in expected.items()}


def make_server(db: Database, queue_depth: int) -> ReproServer:
    server = ReproServer(
        db, ServerConfig(workers=WORKERS, queue_depth=queue_depth),
        registry=MetricsRegistry())
    raw = server.handle(Request(
        "POST", "/templates",
        body=json.dumps({"name": "group",
                         "text": "Q(b, c) :- R(a, b, c), a = $key"}
                        ).encode()))
    assert raw.split()[1] == b"200", raw
    return server


def query_request(key: str) -> Request:
    return Request("POST", "/query", body=json.dumps(
        {"template": "group", "params": {"key": key}}).encode())


# -- the closed-loop client ---------------------------------------------------


def run_client(server: ReproServer, seed: int, requests: int,
               outcomes: list, raws: list) -> None:
    """One closed-loop client: issue, wait, repeat.  The measured loop
    only records ``(status, seconds)`` and the raw response bytes —
    any heavier client-side work (JSON parse, answer comparison) would
    burn GIL time the one server worker needs, polluting the latencies
    of every *other* in-flight request.  Verification happens after
    the round (:func:`verify_round`)."""
    rng = random.Random(seed)
    for _ in range(requests):
        key = f"k{rng.randrange(N_KEYS)}"
        request = query_request(key)
        start = time.perf_counter()
        raw = server.submit(request).result()
        elapsed = time.perf_counter() - start
        status = int(raw[9:12])  # b"HTTP/1.1 NNN ..."
        outcomes.append((status, elapsed))
        if status == 429:
            time.sleep(SHED_BACKOFF_S)
        else:
            raws.append((key, status, raw))


def verify_round(raws: list, expected: dict, failures: list) -> int:
    """Compare a subsample of admitted responses (every 8th, plus any
    anomalous status) against the pure-Python oracle; returns how many
    were checked."""
    checked = 0
    for index, (key, status, raw) in enumerate(raws):
        if status != 200:
            failures.append(f"{key}: unexpected status {status}")
            continue
        if index % 8:
            continue
        checked += 1
        body = json.loads(raw.partition(b"\r\n\r\n")[2])
        if body["answers"] != expected[key]:
            failures.append(f"{key}: answers differ under load")
        if not body["bounded"]:
            failures.append(f"{key}: served unbounded under load")
    return checked


def one_round(server: ReproServer, clients: int, round_no: int,
              expected: dict, failures: list) -> dict:
    """One round: ``clients`` closed-loop clients, each issuing
    ``REQUESTS_PER_CLIENT`` requests; returns the latency ledger."""
    outcomes: list[tuple[int, float]] = []
    raws: list = []
    lock = threading.Lock()

    def worker(seed: int) -> None:
        local_outcomes: list = []
        local_raws: list = []
        run_client(server, seed, REQUESTS_PER_CLIENT, local_outcomes,
                   local_raws)
        with lock:
            outcomes.extend(local_outcomes)
            raws.extend(local_raws)

    start = time.perf_counter()
    threads = [threading.Thread(
        target=worker, args=(1_000 * round_no + index,))
        for index in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    checked = verify_round(raws, expected, failures)

    admitted = sorted(seconds for status, seconds in outcomes
                      if status == 200)
    shed = sum(1 for status, _ in outcomes if status == 429)
    return {
        "checked": checked,
        "clients": clients,
        "requests": len(outcomes),
        "admitted": len(admitted),
        "shed": shed,
        "p50_ms": percentile(admitted, 0.50) * 1e3,
        "p99_ms": percentile(admitted, 0.99) * 1e3,
        "throughput_rps": len(admitted) / max(wall_s, 1e-9),
        "wall_s": wall_s,
    }


def offered_load(server: ReproServer, clients: int, expected: dict,
                 failures: list) -> dict:
    """Best of ``ROUNDS`` rounds at one offered load (lowest admitted
    p99); identity failures and shedding accumulate across all rounds."""
    rounds = [one_round(server, clients, round_no, expected, failures)
              for round_no in range(1, ROUNDS + 1)]
    best = min(rounds, key=lambda level: level["p99_ms"])
    best["p99_max_ms"] = max(level["p99_ms"] for level in rounds)
    best["shed_all_rounds"] = sum(level["shed"] for level in rounds)
    best["checked_all_rounds"] = sum(level["checked"] for level in rounds)
    return best


def percentile(sorted_samples: list[float], q: float) -> float:
    if not sorted_samples:
        return float("nan")
    index = min(len(sorted_samples) - 1,
                int(q * (len(sorted_samples) - 1) + 0.5))
    return sorted_samples[index]


# -- the experiment -----------------------------------------------------------


@pytest.fixture(scope="module")
def measured(log):
    failures: list[str] = []
    rows = synthetic_rows()
    expected = oracle_answers(rows)
    db = build_database()
    server = make_server(db, QUEUE_DEPTH)
    try:
        # Warm the plan cache and the *whole* fetch-cache keyspace
        # before any measured run (see the N_KEYS comment).
        for key in range(N_KEYS):
            server.submit(query_request(f"k{key}")).result()

        levels = []
        for clients in (1, CAPACITY, 2 * CAPACITY):
            levels.append(offered_load(server, clients, expected,
                                       failures))
        uncontended, at_capacity, overload = levels

        # The admissionless contrast: same overload, nothing sheds.
        unbounded_server = make_server(db, queue_depth=100_000)
        try:
            for key in range(N_KEYS):  # same warm caches as the gated tier
                unbounded_server.submit(query_request(f"k{key}")).result()
            no_admission = offered_load(unbounded_server,
                                        2 * CAPACITY, expected, [])
        finally:
            unbounded_server.close()

        # The gate compares in the only direction noise acts: a
        # closed-loop round's p99 can only be *inflated* by scheduler
        # blips, so the overload side takes its best round while the
        # uncontended reference takes its max across rounds (the
        # conservative estimate of the true uncontended tail).  The
        # failure mode this guards — admission moving back behind the
        # executor queue, so overload queues unboundedly — lands at
        # the no-admission level (reported below), far past the bound
        # on every round.
        uncontended_ref_ms = uncontended["p99_max_ms"]
        p99_bounded = int(overload["p99_ms"]
                          <= P99_BOUND_FACTOR * uncontended_ref_ms)
        stats = server.tenants["default"].service.stats()
        exposition = render_exposition(server.registry)

        log.row("")
        log.row(f"-- closed loop over submit(): {WORKERS} worker, "
                f"queue depth {QUEUE_DEPTH} (capacity {CAPACITY}), "
                f"{REQUESTS_PER_CLIENT} requests/client, statistics "
                f"over admitted (200) responses --")
        log.table(
            ["offered load", "requests", "admitted", "shed",
             "p50", "p99", "throughput"],
            [[f"{level['clients']} client(s)", level["requests"],
              level["admitted"], level["shed"],
              f"{level['p50_ms']:.3f}ms", f"{level['p99_ms']:.3f}ms",
              f"{level['throughput_rps']:.0f}/s"]
             for level in levels]
            + [[f"{no_admission['clients']} clients, no admission",
                no_admission["requests"], no_admission["admitted"],
                no_admission["shed"],
                f"{no_admission['p50_ms']:.3f}ms",
                f"{no_admission['p99_ms']:.3f}ms",
                f"{no_admission['throughput_rps']:.0f}/s"]])
        log.row(f"claim: at 2x capacity, admitted p99 within "
                f"{P99_BOUND_FACTOR:.0f}x the uncontended p99 while "
                f"shedding the excess.")
        log.row(f"measured: {overload['p99_ms']:.3f}ms vs "
                f"{uncontended_ref_ms:.3f}ms uncontended "
                f"({overload['p99_ms'] / max(uncontended_ref_ms, 1e-9):.2f}x); "
                f"without admission the same load serves p99 "
                f"{no_admission['p99_ms']:.3f}ms.")

        log.metric("uncontended_p50_ms", round(uncontended["p50_ms"], 3))
        log.metric("uncontended_p99_ms", round(uncontended["p99_ms"], 3))
        log.metric("uncontended_p99_ref_ms", round(uncontended_ref_ms, 3))
        log.metric("capacity_p99_ms", round(at_capacity["p99_ms"], 3))
        log.metric("overload_admitted_p50_ms",
                   round(overload["p50_ms"], 3))
        log.metric("overload_admitted_p99_ms",
                   round(overload["p99_ms"], 3))
        log.metric("overload_p99_vs_uncontended_ratio",
                   round(overload["p99_ms"]
                         / max(uncontended_ref_ms, 1e-9), 2))
        log.metric("no_admission_p99_ms",
                   round(no_admission["p99_ms"], 3))
        log.metric("overload_shed_ratio",
                   round(overload["shed"] / overload["requests"], 3))
        log.metric("admitted_throughput_rps",
                   round(overload["throughput_rps"], 1))
        log.metric("requests_per_client", REQUESTS_PER_CLIENT)
        log.metric("capacity", CAPACITY)
        log.metric("p99_bounded", p99_bounded)
        log.gate("p99_bounded", min_value=1)
    finally:
        server.close()
    return {"failures": failures, "levels": levels,
            "overload": overload, "uncontended": uncontended,
            "uncontended_ref_ms": uncontended_ref_ms,
            "p99_bounded": p99_bounded, "stats": stats,
            "exposition": exposition}


# -- the tests ----------------------------------------------------------------


@pytest.mark.bench_correctness
def test_identical_answers_under_load_and_shedding(measured):
    assert not measured["failures"], measured["failures"][:5]
    # The check must not pass by silently not verifying anything.
    assert measured["overload"]["checked_all_rounds"] > 100


@pytest.mark.bench_correctness
def test_overload_actually_sheds(measured):
    """2x-capacity closed-loop clients against a capacity-2 tier must
    trip the gate — if nothing sheds, the p99 bound is vacuous."""
    assert measured["overload"]["shed_all_rounds"] > 0
    assert measured["stats"].shed_requests > 0


@pytest.mark.bench_correctness
def test_exposition_carries_the_serve_families(measured):
    for family in ("repro_serve_inflight", "repro_serve_admitted_total",
                   "repro_shed_requests_total", "repro_requests_total",
                   "repro_housekeeping_runs_total"):
        assert family in measured["exposition"], family


def test_admitted_p99_bounded_under_overload(measured):
    """The gated claim: shedding keeps admitted latency bounded —
    also enforced as a min_value trajectory gate on
    BENCH_exp-13.json."""
    assert measured["p99_bounded"] == 1, (
        f"admitted p99 {measured['overload']['p99_ms']:.3f}ms exceeds "
        f"{P99_BOUND_FACTOR:.0f}x uncontended "
        f"{measured['uncontended_ref_ms']:.3f}ms")
