"""EXP-6 — Section 5 / Example 5.1: bounded query specialization.

The parameterized accident query Q(xa) with parameters
X = {date, district} is not boundedly evaluable; instantiating the
single parameter ``date`` makes every specialization covered, while
``district`` alone never does.  QSP is NP-complete for CQ
(Theorem 5.3): the subset search is exponential in |X| in the worst
case, which the parameter-count sweep shows; the per-candidate check
stays PTIME.
"""

from __future__ import annotations

import pytest

from repro import Var
from repro.core import (is_boundedly_evaluable, specialize_minimally,
                        specialization_is_covered)
from repro.query import parse_cq
from repro.workload import canonical_access_schema

from _harness import ExperimentLog, timed

PARAMETERIZED_Q = ("Q(xa) :- Accident(aid, district, date), "
                   "Casualty(cid, aid, class, vid), "
                   "Vehicle(vid, dri, xa)")


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-6", "bounded query specialization (Example 5.1)")
    yield experiment
    experiment.flush()


def test_qsp_example51(benchmark):
    access = canonical_access_schema()
    q = parse_cq(PARAMETERIZED_Q)
    decision = benchmark(lambda: specialize_minimally(
        q, access, parameters=[Var("date"), Var("district")]))
    assert decision
    assert [v.name for v in decision.witness] == ["date"]


def test_qsp_full_parameter_set(benchmark):
    """All variables as parameters — the Section 5 default."""
    access = canonical_access_schema()
    q = parse_cq(PARAMETERIZED_Q)
    decision = benchmark(lambda: specialize_minimally(q, access))
    assert decision
    assert len(decision.witness) == 1


def test_report(benchmark, log):
    access = canonical_access_schema()
    q = parse_cq(PARAMETERIZED_Q)
    assert is_boundedly_evaluable(q, access).is_no

    rows = []
    for params in ([Var("district")], [Var("date")],
                   [Var("date"), Var("district")]):
        names = "{" + ", ".join(v.name for v in params) + "}"
        elapsed, decision = timed(lambda: specialize_minimally(
            q, access, parameters=params))
        witness = ("(" + ", ".join(v.name for v in decision.witness) + ")"
                   if decision.is_yes else "-")
        rows.append([names, str(decision.verdict), witness,
                     decision.details.get("subsets_tried", "-"),
                     f"{elapsed * 1e3:.2f}ms"])
    log.row("")
    log.table(["parameter set X", "boundedly specializable?",
               "minimal x̄", "subsets tried", "time"], rows)
    log.row("")
    log.row("paper (Example 5.1): Q(date = c1) is boundedly evaluable "
            "for all c1; district alone does not suffice.")

    # Per-candidate coverage check is valuation-independent and cheap.
    per_check, _ = timed(lambda: specialization_is_covered(
        q, access, (Var("date"),)), repeat=5)
    log.row(f"per-candidate coverage check: {per_check * 1e3:.3f}ms "
            "(PTIME; the exponential lives in the subset search)")
    benchmark(lambda: None)
