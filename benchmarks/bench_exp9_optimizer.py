"""EXP-9 — optimizer pipeline: optimized physical vs. logical execution.

Not a paper experiment: this measures the rule-based optimizer and the
batch executor the engine refactor added.  The paper certifies the
*logical* bounded plan (what is fetched is bounded by Q and A alone);
this experiment checks that the physical plan the optimizer derives is
a pure win on top of that guarantee.  Claims checked:

* on join-heavy workloads (accidents Q0-style 3-way joins and
  Graph-Search-style social queries encoded relationally), the
  optimized physical executor is **>= 2x faster** than direct logical
  interpretation (which materializes every ``×`` before selecting);
* answers are **bit-identical** between the two, for every query;
* optimization never *adds* data access: tuples fetched by the
  physical plan never exceed the logical interpretation's;
* the rule trace is reported per rule as plan-size deltas.

The columnar section then measures the columnar executor against the
pre-columnar :class:`~repro.engine.executor.LegacyTupleExecutor` on
the same warm physical plans (identical answers *and* identical
``AccessStats`` enforced), replays the storage boundary where the
dictionary-encoded fast path lives (**>= 3x**, hard floor gate), and
reports per-operator throughput plus the steady-state cost of bulk
dictionary encoding.

Run with ``python -m pytest benchmarks/bench_exp9_optimizer.py -x -q``.
"""

from __future__ import annotations

import random
import time
from collections import defaultdict

import pytest

from repro import (AccessConstraint, AccessSchema, Database, Schema,
                   is_boundedly_evaluable)
from repro.engine import (Executor, LegacyTupleExecutor, execute_plan,
                          interpret_logical, optimize)
from repro.engine.executor import AccessStats
from repro.engine.optimizer.specialize import specialized_plan
from repro.query import parse_query
from repro.storage.encoding import ValueDictionary, int_column
from repro.storage.statistics import TableStatistics
from repro.workload.accidents import AccidentScale, simple_accidents
from repro.workload.social import (CITIES, INTERESTS, SocialScale,
                                   relational_social)

from _harness import ExperimentLog, timed

REPEAT = 3
MIN_SPEEDUP = 2.0
#: The columnar storage boundary must beat tuple materialization by
#: this factor (measured ~20x on the replay below — huge margin).
MIN_BOUNDARY_SPEEDUP = 3.0
BOUNDARY_KEYS = 500
BOUNDARY_FANOUT = 60


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-9", "optimizer: physical vs logical execution")
    yield experiment
    experiment.flush()


# -- workloads ----------------------------------------------------------------


def accident_queries():
    db = simple_accidents(AccidentScale(days=90, max_accidents_per_day=30))
    rng = random.Random(9)
    accidents = rng.sample(db.relation_tuples("Accident"), 6)
    queries = [
        (f"drivers[{district}@{date}]",
         f"Q(xa) :- Accident(aid, '{district}', '{date}'), "
         "Casualty(cid, aid, cl, vid), Vehicle(vid, dri, xa)")
        for _, district, date in accidents
    ]
    queries.append((
        "day-pair",
        "Q(d1, d2) :- Accident(a1, d1, t), Accident(a2, d2, t), "
        f"t = '{accidents[0][2]}'"))
    return db, queries


def social_db(scale: SocialScale | None = None) -> Database:
    """The social graph of EXP-3, encoded relationally (see
    ``repro.workload.social.relational_social``)."""
    return relational_social(scale or SocialScale(persons=1500))


def social_queries(db: Database):
    rng = random.Random(23)
    people = sorted({row[0] for row in db.relation_tuples("Friend")})
    queries = []
    for me in rng.sample(people, 4):
        city = rng.choice(CITIES)
        interest = rng.choice(INTERESTS)
        queries.append((
            f"graph-search[{me}]",
            f"Q(f) :- Friend(me, f), LivesIn(f, c), Likes(f, i), "
            f"me = '{me}', c = '{city}', i = '{interest}'"))
        queries.append((
            f"friends-of-friends[{me}]",
            f"Q(g) :- Friend(me, f), Friend(f, g), LivesIn(g, c), "
            f"me = '{me}', c = '{city}'"))
    return queries


# -- the experiment -----------------------------------------------------------


def run_workload(name, db, queries, log, failures):
    statistics = TableStatistics.from_database(db)
    rows = []
    deltas = defaultdict(lambda: [0, 0])  # rule -> [fired, steps removed]
    total_logical = total_physical = 0.0
    for label, text in queries:
        query = parse_query(text)
        decision = is_boundedly_evaluable(query, db.access_schema)
        assert decision.is_yes, f"{label} must be bounded: {decision.reason}"
        plan = decision.witness["plan"]
        physical = optimize(plan, statistics)
        for firing in physical.trace.firings:
            deltas[firing.rule][0] += firing.fired
            deltas[firing.rule][1] += (firing.steps_before
                                       - firing.steps_after)

        logical_s, reference = timed(
            lambda: interpret_logical(plan, db), repeat=REPEAT)
        physical_s, optimized = timed(
            lambda: execute_plan(physical, db), repeat=REPEAT)

        if optimized.answers != reference.answers:
            failures.append(f"{name}/{label}: answers differ")
        if (optimized.stats.tuples_fetched
                > reference.stats.tuples_fetched):
            failures.append(
                f"{name}/{label}: optimization added data access "
                f"({optimized.stats.tuples_fetched} > "
                f"{reference.stats.tuples_fetched} tuples)")

        total_logical += logical_s
        total_physical += physical_s
        rows.append([label, len(plan), len(physical),
                     f"{logical_s * 1e3:.2f}ms",
                     f"{physical_s * 1e3:.3f}ms",
                     f"{logical_s / max(physical_s, 1e-9):.1f}x",
                     len(optimized.answers)])

    speedup = total_logical / max(total_physical, 1e-9)
    log.row("")
    log.row(f"-- {name} (|D| = {db.size()}) --")
    log.table(["query", "logical ops", "physical ops", "logical",
               "physical", "speedup", "answers"], rows)
    log.row(f"workload speedup: {speedup:.1f}x "
            f"({total_logical * 1e3:.1f}ms -> {total_physical * 1e3:.1f}ms)")
    return speedup, deltas


# -- the columnar section -----------------------------------------------------


def compiled_plans(db, queries):
    statistics = TableStatistics.from_database(db)
    plans = []
    for label, text in queries:
        decision = is_boundedly_evaluable(parse_query(text),
                                          db.access_schema)
        assert decision.is_yes, f"{label} must be bounded"
        plans.append((label, optimize(decision.witness["plan"],
                                      statistics)))
    return plans


def columnar_workload(name, db, queries, log, failures):
    """Columnar executor vs the pre-columnar tuple executor on warm
    physical plans.  Decoded answers and the full ``AccessStats`` must
    be identical — the columnar path may only change *how* batches are
    represented, never what is fetched."""
    legacy = LegacyTupleExecutor(db)
    columnar = Executor(db)
    total_legacy = total_columnar = 0.0
    rows = []
    for label, physical in compiled_plans(db, queries):
        reference = legacy.execute(physical)
        encoded = columnar.execute(physical)  # also warms the spec memo
        if encoded.answers != reference.answers:
            failures.append(f"{name}/{label}: columnar answers differ")
        if encoded.stats != reference.stats:
            failures.append(
                f"{name}/{label}: columnar AccessStats drifted "
                f"({encoded.stats} != {reference.stats})")
        legacy_s, _ = timed(lambda: legacy.execute(physical),
                            repeat=REPEAT)
        columnar_s, _ = timed(lambda: columnar.execute(physical),
                              repeat=REPEAT)
        total_legacy += legacy_s
        total_columnar += columnar_s
        rows.append([label, f"{legacy_s * 1e3:.3f}ms",
                     f"{columnar_s * 1e3:.3f}ms",
                     f"{legacy_s / max(columnar_s, 1e-9):.1f}x"])
    speedup = total_legacy / max(total_columnar, 1e-9)
    log.row("")
    log.row(f"-- {name}: columnar vs legacy tuple executor --")
    log.table(["query", "legacy", "columnar", "speedup"], rows)
    log.row(f"columnar speedup: {speedup:.2f}x "
            f"({total_legacy * 1e3:.2f}ms -> {total_columnar * 1e3:.2f}ms)")
    return speedup, total_legacy, total_columnar


def per_operator_rates(db, queries, repeat=REPEAT):
    """Rows produced per second by each specialized operator closure,
    measured by stepping the warm program one closure at a time."""
    executor = Executor(db)
    totals: dict[str, list[float]] = defaultdict(lambda: [0.0, 0])
    for _, physical in compiled_plans(db, queries):
        spec = specialized_plan(physical, db.dictionary)
        for _ in range(repeat):
            stats = AccessStats()
            batches = []
            for step, op_name in zip(spec.steps, spec.labels):
                start = time.perf_counter()
                batch = step(batches, executor, stats)
                elapsed = time.perf_counter() - start
                totals[op_name][0] += elapsed
                totals[op_name][1] += batch.length
                batches.append(batch)
    return {op: int(produced / max(seconds, 1e-9))
            for op, (seconds, produced) in sorted(totals.items())}


def boundary_db() -> Database:
    """A deterministic high-fanout instance sized so one vectorized
    fetch moves ``BOUNDARY_KEYS * BOUNDARY_FANOUT`` rows."""
    schema = Schema.from_dict({"R": ("A", "B", "C")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B", "C"), BOUNDARY_FANOUT)])
    db = Database(schema, access)
    for key in range(BOUNDARY_KEYS):
        for i in range(BOUNDARY_FANOUT):
            db.insert("R", (f"key-{key}", f"val-{key}-{i}", i))
    return db


def boundary_replay(log, failures):
    """Replay the storage boundary both ways.

    The pre-columnar engine crossed it as Python tuples which the
    columnar operators would then have to dictionary-encode and
    transpose per batch; incremental encoding at insert time moves all
    of that off the read path, so ``fetch_flat_encoded`` just splices
    pre-encoded array slices.  This is where the tentpole's >= 3x
    lives, independent of how few rows a bounded query moves."""
    db = boundary_db()
    constraint = list(db.access_schema)[0]
    x_values = [(f"key-{key}",) for key in range(BOUNDARY_KEYS)]
    dictionary = db.dictionary
    codes = [dictionary.encode(value) for (value,) in x_values]

    def legacy_fetch():
        rows = db.fetch_flat(constraint, x_values)
        coded = list(map(dictionary.encode_row, rows))
        return [int_column(col) for col in zip(*coded)], len(coded)

    def encoded_fetch():
        return db.fetch_flat_encoded(constraint, codes)

    legacy_s, (legacy_cols, n_rows) = timed(legacy_fetch, repeat=REPEAT)
    encoded_s, (cols, length) = timed(encoded_fetch, repeat=REPEAT)
    if length != n_rows or (dictionary.decode_rows(cols, length)
                            != dictionary.decode_rows(legacy_cols,
                                                      n_rows)):
        failures.append("boundary replay: encoded fetch decoded to a "
                        "different row set")
    speedup = legacy_s / max(encoded_s, 1e-9)
    log.row("")
    log.row(f"-- storage boundary replay ({BOUNDARY_KEYS} keys x "
            f"{BOUNDARY_FANOUT} rows = {length} rows/fetch) --")
    log.table(["path", "ms/fetch", "rows/sec"],
              [["tuple fetch + encode", f"{legacy_s * 1e3:.3f}",
                f"{int(length / max(legacy_s, 1e-9)):,}"],
               ["pre-encoded columns", f"{encoded_s * 1e3:.3f}",
                f"{int(length / max(encoded_s, 1e-9)):,}"]])
    log.row(f"boundary speedup: {speedup:.1f}x")
    return speedup, int(length / max(encoded_s, 1e-9))


def encode_overhead(db):
    """Steady-state cost of bulk-encoding the whole instance into a
    fresh dictionary — the price insert-time encoding amortizes away
    from the read path."""
    all_rows = [row for name in sorted(db.summary())
                for row in db.relation_tuples(name)]

    def bulk_encode():
        fresh = ValueDictionary()
        encode_row = fresh.encode_row
        for row in all_rows:
            encode_row(row)
        return len(fresh)

    seconds, dict_size = timed(bulk_encode, repeat=REPEAT)
    return seconds, len(all_rows), dict_size


@pytest.fixture(scope="module")
def measured(log):
    """Run both workloads once; identity violations are *collected*
    here and asserted in the bench_correctness test, wall-clock
    thresholds in the (noise-tolerant) speedup test."""
    failures: list[str] = []
    accident_db, acc_queries = accident_queries()
    acc_speedup, acc_deltas = run_workload(
        "accidents", accident_db, acc_queries, log, failures)

    social = social_db()
    soc_speedup, soc_deltas = run_workload(
        "social", social, social_queries(social), log, failures)

    merged = defaultdict(lambda: [0, 0])
    for deltas in (acc_deltas, soc_deltas):
        for rule, (fired, removed) in deltas.items():
            merged[rule][0] += fired
            merged[rule][1] += removed
    log.row("")
    log.row("-- per-rule plan-size deltas (both workloads) --")
    log.table(["rule", "rewrites", "steps removed"],
              [[rule, fired, removed]
               for rule, (fired, removed) in merged.items()])
    log.metric("accidents_speedup", round(acc_speedup, 2))
    log.metric("social_speedup", round(soc_speedup, 2))
    log.metric("rule_firings",
               {rule: fired for rule, (fired, _) in merged.items()})

    # -- columnar executor vs the pre-columnar tuple path --
    acc_col, acc_leg_s, acc_col_s = columnar_workload(
        "accidents", accident_db, acc_queries, log, failures)
    soc_col, soc_leg_s, soc_col_s = columnar_workload(
        "social", social, social_queries(social), log, failures)
    columnar_speedup = ((acc_leg_s + soc_leg_s)
                        / max(acc_col_s + soc_col_s, 1e-9))
    boundary_speedup, boundary_rate = boundary_replay(log, failures)
    op_rates = per_operator_rates(social, social_queries(social))
    encode_s, encoded_rows, dict_size = encode_overhead(accident_db)
    log.row("")
    log.row("-- per-operator throughput (social, warm closures) --")
    log.table(["operator", "rows out/sec"],
              [[op, f"{rate:,}"] for op, rate in op_rates.items()])
    log.row(f"bulk encode overhead: {encoded_rows} rows -> "
            f"{dict_size} dictionary entries in {encode_s * 1e3:.2f}ms")

    log.metric("columnar_vs_legacy_speedup", round(columnar_speedup, 2))
    log.metric("columnar_boundary_speedup", round(boundary_speedup, 1))
    log.metric("columnar_boundary_rows_per_sec", boundary_rate)
    log.metric("operator_rows_per_sec", op_rates)
    log.metric("encode_overhead_ms", round(encode_s * 1e3, 3))
    log.metric("encode_rows_per_sec",
               int(encoded_rows / max(encode_s, 1e-9)))
    # Hard floors: the boundary is where the tentpole's win lives and
    # is deterministic enough to gate at the full 3x; end-to-end times
    # on bounded queries are dominated by fixed per-query costs, so
    # the floor there only demands "never slower than the tuple path".
    log.gate("columnar_boundary_speedup",
             min_value=MIN_BOUNDARY_SPEEDUP)
    log.gate("columnar_vs_legacy_speedup", min_value=1.1)
    return {"failures": failures, "acc_speedup": acc_speedup,
            "soc_speedup": soc_speedup, "merged": merged,
            "columnar_speedup": columnar_speedup,
            "boundary_speedup": boundary_speedup}


@pytest.mark.bench_correctness
def test_identical_answers_and_no_added_access(measured):
    assert not measured["failures"], measured["failures"][:5]
    # The tentpole rules actually fired (deterministic counters).
    merged = measured["merged"]
    assert merged["product-to-hash-join"][0] > 0
    assert merged["select-into-fetch"][0] > 0


def test_optimizer_speedup(measured):
    acc_speedup = measured["acc_speedup"]
    soc_speedup = measured["soc_speedup"]
    # The join-heavy workloads must show the headline win.
    assert acc_speedup >= MIN_SPEEDUP, f"accidents: only {acc_speedup:.1f}x"
    assert soc_speedup >= MIN_SPEEDUP, f"social: only {soc_speedup:.1f}x"


def test_columnar_boundary_speedup(measured):
    """The columnar smoke gate CI runs standalone: pre-encoded column
    fetches must beat tuple materialization + per-batch encoding by
    >= 3x at the storage boundary (measured ~20x)."""
    boundary = measured["boundary_speedup"]
    assert boundary >= MIN_BOUNDARY_SPEEDUP, \
        f"boundary replay: only {boundary:.1f}x"
    # End to end the columnar executor must never lose to the tuple
    # path it replaced (bounded queries move few rows, so the margin
    # here is structurally smaller than at the boundary).
    assert measured["columnar_speedup"] >= 1.1, \
        f"end-to-end: only {measured['columnar_speedup']:.2f}x"
