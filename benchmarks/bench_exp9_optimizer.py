"""EXP-9 — optimizer pipeline: optimized physical vs. logical execution.

Not a paper experiment: this measures the rule-based optimizer and the
batch executor the engine refactor added.  The paper certifies the
*logical* bounded plan (what is fetched is bounded by Q and A alone);
this experiment checks that the physical plan the optimizer derives is
a pure win on top of that guarantee.  Claims checked:

* on join-heavy workloads (accidents Q0-style 3-way joins and
  Graph-Search-style social queries encoded relationally), the
  optimized physical executor is **>= 2x faster** than direct logical
  interpretation (which materializes every ``×`` before selecting);
* answers are **bit-identical** between the two, for every query;
* optimization never *adds* data access: tuples fetched by the
  physical plan never exceed the logical interpretation's;
* the rule trace is reported per rule as plan-size deltas.

Run with ``python -m pytest benchmarks/bench_exp9_optimizer.py -x -q``.
"""

from __future__ import annotations

import random
from collections import defaultdict

import pytest

from repro import Database, is_boundedly_evaluable
from repro.engine import execute_plan, interpret_logical, optimize
from repro.query import parse_query
from repro.storage.statistics import TableStatistics
from repro.workload.accidents import AccidentScale, simple_accidents
from repro.workload.social import (CITIES, INTERESTS, SocialScale,
                                   relational_social)

from _harness import ExperimentLog, timed

REPEAT = 3
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-9", "optimizer: physical vs logical execution")
    yield experiment
    experiment.flush()


# -- workloads ----------------------------------------------------------------


def accident_queries():
    db = simple_accidents(AccidentScale(days=90, max_accidents_per_day=30))
    rng = random.Random(9)
    accidents = rng.sample(db.relation_tuples("Accident"), 6)
    queries = [
        (f"drivers[{district}@{date}]",
         f"Q(xa) :- Accident(aid, '{district}', '{date}'), "
         "Casualty(cid, aid, cl, vid), Vehicle(vid, dri, xa)")
        for _, district, date in accidents
    ]
    queries.append((
        "day-pair",
        "Q(d1, d2) :- Accident(a1, d1, t), Accident(a2, d2, t), "
        f"t = '{accidents[0][2]}'"))
    return db, queries


def social_db(scale: SocialScale | None = None) -> Database:
    """The social graph of EXP-3, encoded relationally (see
    ``repro.workload.social.relational_social``)."""
    return relational_social(scale or SocialScale(persons=1500))


def social_queries(db: Database):
    rng = random.Random(23)
    people = sorted({row[0] for row in db.relation_tuples("Friend")})
    queries = []
    for me in rng.sample(people, 4):
        city = rng.choice(CITIES)
        interest = rng.choice(INTERESTS)
        queries.append((
            f"graph-search[{me}]",
            f"Q(f) :- Friend(me, f), LivesIn(f, c), Likes(f, i), "
            f"me = '{me}', c = '{city}', i = '{interest}'"))
        queries.append((
            f"friends-of-friends[{me}]",
            f"Q(g) :- Friend(me, f), Friend(f, g), LivesIn(g, c), "
            f"me = '{me}', c = '{city}'"))
    return queries


# -- the experiment -----------------------------------------------------------


def run_workload(name, db, queries, log, failures):
    statistics = TableStatistics.from_database(db)
    rows = []
    deltas = defaultdict(lambda: [0, 0])  # rule -> [fired, steps removed]
    total_logical = total_physical = 0.0
    for label, text in queries:
        query = parse_query(text)
        decision = is_boundedly_evaluable(query, db.access_schema)
        assert decision.is_yes, f"{label} must be bounded: {decision.reason}"
        plan = decision.witness["plan"]
        physical = optimize(plan, statistics)
        for firing in physical.trace.firings:
            deltas[firing.rule][0] += firing.fired
            deltas[firing.rule][1] += (firing.steps_before
                                       - firing.steps_after)

        logical_s, reference = timed(
            lambda: interpret_logical(plan, db), repeat=REPEAT)
        physical_s, optimized = timed(
            lambda: execute_plan(physical, db), repeat=REPEAT)

        if optimized.answers != reference.answers:
            failures.append(f"{name}/{label}: answers differ")
        if (optimized.stats.tuples_fetched
                > reference.stats.tuples_fetched):
            failures.append(
                f"{name}/{label}: optimization added data access "
                f"({optimized.stats.tuples_fetched} > "
                f"{reference.stats.tuples_fetched} tuples)")

        total_logical += logical_s
        total_physical += physical_s
        rows.append([label, len(plan), len(physical),
                     f"{logical_s * 1e3:.2f}ms",
                     f"{physical_s * 1e3:.3f}ms",
                     f"{logical_s / max(physical_s, 1e-9):.1f}x",
                     len(optimized.answers)])

    speedup = total_logical / max(total_physical, 1e-9)
    log.row("")
    log.row(f"-- {name} (|D| = {db.size()}) --")
    log.table(["query", "logical ops", "physical ops", "logical",
               "physical", "speedup", "answers"], rows)
    log.row(f"workload speedup: {speedup:.1f}x "
            f"({total_logical * 1e3:.1f}ms -> {total_physical * 1e3:.1f}ms)")
    return speedup, deltas


@pytest.fixture(scope="module")
def measured(log):
    """Run both workloads once; identity violations are *collected*
    here and asserted in the bench_correctness test, wall-clock
    thresholds in the (noise-tolerant) speedup test."""
    failures: list[str] = []
    accident_db, acc_queries = accident_queries()
    acc_speedup, acc_deltas = run_workload(
        "accidents", accident_db, acc_queries, log, failures)

    social = social_db()
    soc_speedup, soc_deltas = run_workload(
        "social", social, social_queries(social), log, failures)

    merged = defaultdict(lambda: [0, 0])
    for deltas in (acc_deltas, soc_deltas):
        for rule, (fired, removed) in deltas.items():
            merged[rule][0] += fired
            merged[rule][1] += removed
    log.row("")
    log.row("-- per-rule plan-size deltas (both workloads) --")
    log.table(["rule", "rewrites", "steps removed"],
              [[rule, fired, removed]
               for rule, (fired, removed) in merged.items()])
    log.metric("accidents_speedup", round(acc_speedup, 2))
    log.metric("social_speedup", round(soc_speedup, 2))
    log.metric("rule_firings",
               {rule: fired for rule, (fired, _) in merged.items()})
    return {"failures": failures, "acc_speedup": acc_speedup,
            "soc_speedup": soc_speedup, "merged": merged}


@pytest.mark.bench_correctness
def test_identical_answers_and_no_added_access(measured):
    assert not measured["failures"], measured["failures"][:5]
    # The tentpole rules actually fired (deterministic counters).
    merged = measured["merged"]
    assert merged["product-to-hash-join"][0] > 0
    assert merged["select-into-fetch"][0] > 0


def test_optimizer_speedup(measured):
    acc_speedup = measured["acc_speedup"]
    soc_speedup = measured["soc_speedup"]
    # The join-heavy workloads must show the headline win.
    assert acc_speedup >= MIN_SPEEDUP, f"accidents: only {acc_speedup:.1f}x"
    assert soc_speedup >= MIN_SPEEDUP, f"social: only {soc_speedup:.1f}x"
