"""EXP-2 — Section 1: "77% of conjunctive queries are boundedly
evaluable under a set of 84 simple access constraints".

400 random FK-join CQs over the extended accident schema, against the
curated access schema (the analogue of the paper's 84 constraints) and
against a blindly discovered schema.  Expected shape: a clear majority
(not all) of the workload is covered; the PTIME coverage check answers
in well under a millisecond per query.
"""

from __future__ import annotations

import pytest

from repro.core import is_boundedly_evaluable, is_covered
from repro.schema.discovery import DiscoveryOptions, discover_access_schema
from repro.workload import (AccidentScale, accident_workload_config,
                            extended_access_schema, extended_accidents,
                            extended_schema, generate_workload)

from _harness import ExperimentLog, timed

WORKLOAD_SIZE = 400


@pytest.fixture(scope="module")
def workload():
    return generate_workload(WORKLOAD_SIZE,
                             accident_workload_config(extended_schema()),
                             seed=7)


@pytest.fixture(scope="module")
def log():
    experiment = ExperimentLog(
        "EXP-2", "coverage rate of a random CQ workload (paper: 77%)")
    yield experiment
    experiment.flush()


def test_coverage_check_throughput(benchmark, workload):
    """The PTIME syntactic check over the whole workload."""
    access = extended_access_schema()
    rate = benchmark(lambda: sum(
        1 for q in workload if is_covered(q, access)) / len(workload))
    benchmark.extra_info["coverage_rate"] = rate


def test_bep_pipeline_throughput(benchmark, workload):
    """The full BEP pipeline (adds unsat + rewriting paths)."""
    access = extended_access_schema()
    sample = workload[:80]
    rate = benchmark(lambda: sum(
        1 for q in sample if is_boundedly_evaluable(q, access)) / len(sample))
    benchmark.extra_info["bep_rate"] = rate


def test_report(benchmark, workload, log):
    access = extended_access_schema()
    elapsed, covered = timed(lambda: sum(
        1 for q in workload if is_covered(q, access)))
    rate = covered / len(workload)

    db = extended_accidents(AccidentScale(days=20, max_accidents_per_day=12))
    discovered = discover_access_schema(
        db, DiscoveryOptions(max_bound=256))
    discovered_rate = sum(
        1 for q in workload if is_covered(q, discovered)) / len(workload)

    log.row("")
    log.table(
        ["access schema", "#constraints", "covered", "rate",
         "s/400 queries"],
        [["curated (84-analogue)", len(access), covered,
          f"{rate:.1%}", f"{elapsed:.3f}"],
         ["discovered from data", len(discovered),
          round(discovered_rate * len(workload)),
          f"{discovered_rate:.1%}", "-"]])
    log.row("")
    log.row("paper: 77% of CQs boundedly evaluable under 84 constraints.")
    log.row(f"measured: {rate:.1%} under the curated schema "
            f"({len(access)} constraints); a clear majority, not all.")
    assert 0.55 <= rate <= 0.95
    assert rate < 1.0  # The experiment is vacuous at 100%.
    benchmark(lambda: None)
