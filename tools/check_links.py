#!/usr/bin/env python
"""Check relative links and anchors in the repo's markdown files.

Stdlib-only.  For every inline markdown link ``[text](target)`` in the
given files:

* ``http(s)://`` / ``mailto:`` targets are skipped (no network in CI);
* relative-path targets must resolve to an existing file or directory,
  relative to the file containing the link;
* anchor targets (``#section`` or ``other.md#section``) must match a
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to hyphens, ``-1``/``-2`` suffixes for
  duplicates).

Links inside fenced code blocks are ignored.  Exit 1 and a per-link
report on any broken target.

Usage: ``python tools/check_links.py README.md docs/*.md ROADMAP.md``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) with no nesting; target runs to the first unescaped ')'.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE = re.compile(r"^(```|~~~)")
# Markdown emphasis/code wrappers that GitHub strips before slugging.
_MARKUP = re.compile(r"[*_`]|\[|\]\([^)]*\)")
_NON_SLUG = re.compile(r"[^\w\- ]", re.UNICODE)


def github_slug(heading: str) -> str:
    text = _MARKUP.sub("", heading.strip())
    text = _NON_SLUG.sub("", text.lower())
    return text.replace(" ", "-")


def iter_outside_fences(lines):
    """Yield (lineno, line) for lines outside fenced code blocks."""
    in_fence = False
    for number, line in enumerate(lines, start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield number, line


def anchors_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for _, line in iter_outside_fences(path.read_text().splitlines()):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    for lineno, line in iter_outside_fences(path.read_text().splitlines()):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{path}:{lineno}"
            file_part, _, anchor = target.partition("#")
            if file_part:
                dest = (path.parent / file_part).resolve()
                if not dest.exists():
                    errors.append(f"{where}: broken link '{target}' "
                                  f"(no such file {dest})")
                    continue
            else:
                dest = path.resolve()
            if anchor:
                if dest.is_dir() or dest.suffix.lower() != ".md":
                    continue  # anchors into non-markdown: not checkable
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if anchor.lower() not in anchor_cache[dest]:
                    errors.append(f"{where}: broken anchor '{target}' "
                                  f"(no heading slugs to '#{anchor}' "
                                  f"in {dest.name})")
    return errors


def main(argv: list[str]) -> int:
    files = [Path(name) for name in argv] or [Path("README.md")]
    missing = [str(f) for f in files if not f.is_file()]
    if missing:
        print(f"no such file(s): {', '.join(missing)}", file=sys.stderr)
        return 1
    cache: dict[Path, set[str]] = {}
    errors = []
    checked = 0
    for path in files:
        errors.extend(check_file(path, cache))
        checked += 1
    for error in errors:
        print(error, file=sys.stderr)
    print(f"{checked} file(s) checked, {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
